#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "algos/reference.hpp"
#include "graph/csr.hpp"
#include "graph/relabel.hpp"
#include "stream/mutation_log.hpp"

namespace hpcg::check {

namespace {

constexpr double kPrReferenceTolerance = 1e-9;

/// Accumulates mismatches but keeps the report bounded.
class Mismatches {
 public:
  Mismatches(std::vector<Failure>& out, std::string oracle, std::string what)
      : out_(out), oracle_(std::move(oracle)), what_(std::move(what)) {}

  ~Mismatches() {
    if (count_ == 0) return;
    std::ostringstream detail;
    detail << what_ << ": " << first_;
    if (count_ > 1) detail << " (+" << count_ - 1 << " more)";
    out_.push_back({oracle_, detail.str()});
  }

  template <class A, class B>
  void add(std::size_t index, const A& got, const B& want) {
    if (count_++ == 0) {
      std::ostringstream f;
      f << "[" << index << "] got " << got << " want " << want;
      first_ = f.str();
    }
  }

  void note(const std::string& text) {
    if (count_++ == 0) first_ = text;
  }

 private:
  std::vector<Failure>& out_;
  std::string oracle_;
  std::string what_;
  std::string first_;
  int count_ = 0;
};

void compare_levels(std::vector<Failure>& out, const std::string& what,
                    const std::vector<std::int64_t>& got,
                    const std::vector<std::int64_t>& want) {
  Mismatches m(out, "reference", what);
  if (got.size() != want.size()) {
    m.note("size " + std::to_string(got.size()) + " want " +
           std::to_string(want.size()));
    return;
  }
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (got[v] != want[v]) m.add(v, got[v], want[v]);
  }
}

void check_bfs_invariants(std::vector<Failure>& out, const std::string& what,
                          const graph::EdgeList& el, Gid root,
                          const std::vector<std::int64_t>& level) {
  Mismatches m(out, "invariant", what);
  if (level.size() != static_cast<std::size_t>(el.n)) {
    m.note("level vector size " + std::to_string(level.size()));
    return;
  }
  if (level[static_cast<std::size_t>(root)] != 0) {
    m.note("root level " + std::to_string(level[static_cast<std::size_t>(root)]));
    return;
  }
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    const auto lu = level[static_cast<std::size_t>(el.edges[i].u)];
    const auto lv = level[static_cast<std::size_t>(el.edges[i].v)];
    // Undirected graph: reachability is closed over edges, and adjacent
    // reached vertices sit at most one BFS level apart.
    if ((lu < 0) != (lv < 0) || (lu >= 0 && std::llabs(lu - lv) > 1)) {
      m.add(i, std::to_string(lu) + "~" + std::to_string(lv), "relaxed edge");
    }
  }
}

}  // namespace

std::vector<Gid> normalize_components(const std::vector<Gid>& raw) {
  std::unordered_map<Gid, Gid> min_member;
  min_member.reserve(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) {
    const auto [it, fresh] = min_member.try_emplace(raw[v], static_cast<Gid>(v));
    if (!fresh && static_cast<Gid>(v) < it->second) it->second = static_cast<Gid>(v);
  }
  std::vector<Gid> canon(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) canon[v] = min_member[raw[v]];
  return canon;
}

std::vector<Failure> check_reference(const CheckConfig& cfg,
                                     const graph::EdgeList& el,
                                     const RunResult& result) {
  std::vector<Failure> out;
  if (cfg.algo == "bfs" && result.path != "serve") {
    const graph::Csr csr(el.n, el.edges);
    compare_levels(out, "bfs levels", result.levels,
                   algos::ref::bfs_levels(csr, cfg.root));
  } else if (cfg.algo == "msbfs" || result.path == "serve") {
    const graph::Csr csr(el.n, el.edges);
    if (result.ms_levels.size() != cfg.sources.size()) {
      out.push_back({"reference", "got " + std::to_string(result.ms_levels.size()) +
                                      " level vectors for " +
                                      std::to_string(cfg.sources.size()) + " sources"});
      return out;
    }
    for (std::size_t s = 0; s < cfg.sources.size(); ++s) {
      compare_levels(out, "source " + std::to_string(cfg.sources[s]) + " levels",
                     result.ms_levels[s],
                     algos::ref::bfs_levels(csr, cfg.sources[s]));
    }
  } else if ((cfg.algo == "pr" && result.path != "stream") ||
             cfg.algo == "prwarm") {
    // Stream-path pr is a tolerance solve, not cfg.iterations fixed
    // rounds; check_stream compares it (every epoch, including 0) against
    // a sequential tolerance solver instead.
    const graph::Csr csr(el.n, el.edges);
    const auto want = algos::ref::pagerank(csr, cfg.iterations, 0.85);
    Mismatches m(out, "reference", "pagerank");
    if (result.rank.size() != want.size()) {
      m.note("size " + std::to_string(result.rank.size()));
    } else {
      for (std::size_t v = 0; v < want.size(); ++v) {
        if (std::abs(result.rank[v] - want[v]) > kPrReferenceTolerance) {
          m.add(v, result.rank[v], want[v]);
        }
      }
    }
  } else if (cfg.algo == "cc") {
    Mismatches m(out, "reference", "components");
    const auto want = algos::ref::connected_components(el);
    const auto got = normalize_components(result.component);
    if (got.size() != want.size()) {
      m.note("size " + std::to_string(got.size()));
    } else {
      for (std::size_t v = 0; v < want.size(); ++v) {
        if (got[v] != want[v]) m.add(v, got[v], want[v]);
      }
    }
  } else if (cfg.algo == "lp") {
    // LP's mode tie-break depends on label VALUES, which are striped ids —
    // so the oracle must run on the striped relabeling of the input.
    graph::EdgeList striped = el;
    const graph::StripedRelabel relabel(el.n, cfg.rows);
    relabel.apply(striped);
    const graph::Csr csr(striped.n, striped.edges);
    const auto want = algos::ref::label_propagation(csr, cfg.iterations);
    Mismatches m(out, "reference", "lp labels");
    if (result.lp_label.size() != want.size()) {
      m.note("size " + std::to_string(result.lp_label.size()));
    } else {
      for (Gid v = 0; v < el.n; ++v) {
        const auto got = result.lp_label[static_cast<std::size_t>(v)];
        const auto ref = want[static_cast<std::size_t>(relabel.to_new(v))];
        if (got != ref) m.add(static_cast<std::size_t>(v), got, ref);
      }
    }
  }
  return out;
}

std::vector<Failure> check_invariants(const CheckConfig& cfg,
                                      const graph::EdgeList& el,
                                      const RunResult& result) {
  std::vector<Failure> out;
  if (cfg.algo == "bfs" && result.path != "serve") {
    check_bfs_invariants(out, "bfs", el, cfg.root, result.levels);
  } else if (cfg.algo == "msbfs" || result.path == "serve") {
    for (std::size_t s = 0; s < result.ms_levels.size() && s < cfg.sources.size(); ++s) {
      check_bfs_invariants(out, "source " + std::to_string(cfg.sources[s]), el,
                           cfg.sources[s], result.ms_levels[s]);
    }
  } else if (cfg.algo == "pr" || cfg.algo == "prwarm") {
    Mismatches m(out, "invariant", "pagerank mass");
    const double floor = 0.15 / static_cast<double>(el.n) - 1e-12;
    double sum = 0.0;
    for (std::size_t v = 0; v < result.rank.size(); ++v) {
      if (result.rank[v] < floor) m.add(v, result.rank[v], "(1-d)/n floor");
      sum += result.rank[v];
    }
    // Dangling mass is dropped, never created: total stays within [0, 1].
    if (sum > 1.0 + 1e-9) m.note("total mass " + std::to_string(sum));
  } else if (cfg.algo == "cc") {
    Mismatches m(out, "invariant", "cc labels");
    for (std::size_t v = 0; v < result.component.size(); ++v) {
      if (result.component[v] < 0 || result.component[v] >= el.n) {
        m.add(v, result.component[v], "label in [0, n)");
      }
    }
    for (std::size_t i = 0; i < el.edges.size(); ++i) {
      const auto lu = result.component[static_cast<std::size_t>(el.edges[i].u)];
      const auto lv = result.component[static_cast<std::size_t>(el.edges[i].v)];
      if (lu != lv) {
        m.add(i, std::to_string(lu) + "~" + std::to_string(lv), "edge-consistent");
      }
    }
  } else if (cfg.algo == "lp") {
    Mismatches m(out, "invariant", "lp labels");
    for (std::size_t v = 0; v < result.lp_label.size(); ++v) {
      if (result.lp_label[v] >= static_cast<std::uint64_t>(el.n)) {
        m.add(v, result.lp_label[v], "label in [0, n)");
      }
    }
  }
  return out;
}

namespace {

/// Sequential tolerance PageRank: the ref::pagerank update iterated until
/// the L1 step shrinks below `tol`. Both this and the engine's tolerance
/// solve land within ~tol/(1-d) of the same fixpoint, far inside the 1e-9
/// comparison bound.
std::vector<double> ref_pagerank_tolerance(const graph::Csr& csr, double tol,
                                           int max_iterations, double damping) {
  const auto n = static_cast<std::size_t>(csr.n());
  std::vector<double> pr(n, 1.0 / static_cast<double>(csr.n()));
  std::vector<double> next(n);
  for (int it = 0; it < max_iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (Gid v = 0; v < csr.n(); ++v) {
      const double share = pr[static_cast<std::size_t>(v)] /
                           static_cast<double>(std::max<std::int64_t>(csr.degree(v), 1));
      for (const Gid u : csr.neighbors(v)) {
        next[static_cast<std::size_t>(u)] += share;
      }
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) / static_cast<double>(csr.n()) + damping * next[v];
      delta += std::abs(next[v] - pr[v]);
    }
    pr.swap(next);
    if (delta <= tol) break;
  }
  return pr;
}

/// One epoch entry vs a from-scratch reference on the mutated mirror.
void check_stream_epoch(std::vector<Failure>& out, const CheckConfig& cfg,
                        const graph::EdgeList& mirror, std::size_t index,
                        const RunResult::EpochResult& entry) {
  const std::string what = "epoch[" + std::to_string(index) + "]";
  if (cfg.algo == "bfs") {
    const graph::Csr csr(mirror.n, mirror.edges);
    const auto want = algos::ref::bfs_levels(csr, cfg.root);
    Mismatches m(out, "stream", what + " bfs levels");
    if (entry.levels.size() != want.size()) {
      m.note("size " + std::to_string(entry.levels.size()));
      return;
    }
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (entry.levels[v] != want[v]) m.add(v, entry.levels[v], want[v]);
    }
  } else if (cfg.algo == "pr") {
    const graph::Csr csr(mirror.n, mirror.edges);
    const auto want = ref_pagerank_tolerance(csr, 1e-12, 1000, 0.85);
    Mismatches m(out, "stream", what + " pagerank");
    if (entry.rank.size() != want.size()) {
      m.note("size " + std::to_string(entry.rank.size()));
      return;
    }
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (std::abs(entry.rank[v] - want[v]) > kPrReferenceTolerance) {
        m.add(v, entry.rank[v], want[v]);
      }
    }
  } else {
    const auto want = algos::ref::connected_components(mirror);
    const auto got = normalize_components(entry.component);
    Mismatches m(out, "stream", what + " components");
    if (got.size() != want.size()) {
      m.note("size " + std::to_string(got.size()));
      return;
    }
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (got[v] != want[v]) m.add(v, got[v], want[v]);
    }
  }
}

}  // namespace

std::vector<Failure> check_stream(const CheckConfig& cfg,
                                  const graph::EdgeList& el,
                                  const RunResult& result) {
  std::vector<Failure> out;
  if (result.path != "stream") return out;
  if (result.epochs.size() != static_cast<std::size_t>(cfg.mut_batches) + 1) {
    out.push_back({"stream", "got " + std::to_string(result.epochs.size()) +
                                 " epoch entries for " +
                                 std::to_string(cfg.mut_batches) + " batches"});
    return out;
  }

  // Replay the identical seeded op stream on a host mirror; the engine's
  // per-batch accounting and per-epoch answers must match it exactly.
  graph::EdgeList mirror = el;
  std::uint64_t expected_epoch = 0;
  {
    const auto& e0 = result.epochs.front();
    Mismatches m(out, "stream", "epoch[0] bookkeeping");
    if (e0.epoch != 0) m.note("epoch " + std::to_string(e0.epoch) + " want 0");
    if (e0.incremental) m.note("first query claims incremental");
  }
  check_stream_epoch(out, cfg, mirror, 0, result.epochs.front());

  for (int b = 0; b < cfg.mut_batches; ++b) {
    const auto ops =
        stream::generate_ops(cfg.mut_seed, static_cast<std::uint64_t>(b),
                             cfg.mut_ops, cfg.mut_delete_pct, el.n, &mirror);
    const auto applied = stream::apply_to_edge_list(mirror, ops);
    if (applied.inserted + applied.deleted > 0) ++expected_epoch;
    const auto& entry = result.epochs[static_cast<std::size_t>(b) + 1];
    const std::string what = "epoch[" + std::to_string(b + 1) + "] bookkeeping";
    {
      Mismatches m(out, "stream", what);
      if (entry.epoch != expected_epoch) {
        m.add(0, entry.epoch, expected_epoch);
      }
      if (entry.inserted != applied.inserted) {
        m.add(1, entry.inserted, applied.inserted);
      }
      if (entry.deleted != applied.deleted) {
        m.add(2, entry.deleted, applied.deleted);
      }
      // The incremental/fallback decision is part of the contract: a
      // structural delete MUST force CC/BFS to recompute (correctness),
      // and everything else must take the incremental path (else the
      // subsystem silently degrades to from-scratch and this sweep
      // proves nothing). PR is seeded from the resident ranks always.
      // Waived when a supervisor rebuild happened since the last query:
      // resident algorithm state died with the old session, so the first
      // post-recovery answer may legitimately come from scratch.
      const bool expect_incremental =
          cfg.algo == "pr" || !applied.structural_delete;
      if (!entry.recovered && entry.incremental != expect_incremental) {
        m.note(std::string("incremental=") + (entry.incremental ? "1" : "0") +
               " want " + (expect_incremental ? "1" : "0") +
               (applied.structural_delete ? " (structural delete)" : ""));
      }
    }
    check_stream_epoch(out, cfg, mirror, static_cast<std::size_t>(b) + 1, entry);
  }
  return out;
}

std::vector<Failure> check_recovery(const CheckConfig& cfg, const RunResult& result) {
  std::vector<Failure> out;
  if (result.path == "stream") {
    // Supervised streaming: a kill fault that actually FIRED must have
    // produced at least one supervisor restart — the run completing with
    // zero rebuilds means the death was swallowed, not recovered from.
    // (A trigger past the run's last superstep legitimately never fires.)
    if (cfg.sup > 0 && result.kill_faults_fired > 0 && result.serve_restarts == 0) {
      out.push_back({"recovery",
                     std::to_string(result.kill_faults_fired) +
                         " kill fault(s) fired under sup=" +
                         std::to_string(cfg.sup) +
                         " but the supervisor performed zero restarts"});
    }
    if (result.serve_restarts > cfg.sup) {
      out.push_back({"recovery",
                     std::to_string(result.serve_restarts) +
                         " restarts exceed the sup=" + std::to_string(cfg.sup) +
                         " budget"});
    }
    return out;
  }
  if (result.path != "recovery") return out;
  if (static_cast<int>(result.resume_epochs.size()) != result.restarts) {
    out.push_back({"recovery",
                   std::to_string(result.restarts) + " restarts but " +
                       std::to_string(result.resume_epochs.size()) + " resume epochs"});
  }
  if (result.restarts > 0 && cfg.checkpoint_every > 0 &&
      result.checkpoints_committed == 0) {
    // The replay-from-zero failure mode: the driver restarted, the
    // interval asked for checkpoints, yet the algorithm never committed
    // one — its loop is not wired to the Checkpointer.
    out.push_back({"recovery",
                   "restarted with checkpoint_every=" +
                       std::to_string(cfg.checkpoint_every) +
                       " but zero checkpoints were ever committed"});
  }
  return out;
}

std::vector<Failure> check_identity(const std::string& variant,
                                    const RunResult& base, const RunResult& other,
                                    double pr_tolerance, bool normalize_cc,
                                    bool compare_lp) {
  std::vector<Failure> out;
  const std::string oracle = "identity:" + variant;
  {
    Mismatches m(out, oracle, "bfs levels");
    if (base.levels.size() != other.levels.size()) {
      m.note("size " + std::to_string(other.levels.size()));
    } else {
      for (std::size_t v = 0; v < base.levels.size(); ++v) {
        if (base.levels[v] != other.levels[v]) m.add(v, other.levels[v], base.levels[v]);
      }
    }
  }
  {
    Mismatches m(out, oracle, "batched levels");
    if (base.ms_levels.size() != other.ms_levels.size()) {
      m.note("batch size " + std::to_string(other.ms_levels.size()));
    } else {
      for (std::size_t s = 0; s < base.ms_levels.size(); ++s) {
        if (base.ms_levels[s] != other.ms_levels[s]) m.add(s, "levels", "equal");
      }
    }
  }
  {
    Mismatches m(out, oracle, "pagerank");
    if (base.rank.size() != other.rank.size()) {
      m.note("size " + std::to_string(other.rank.size()));
    } else {
      for (std::size_t v = 0; v < base.rank.size(); ++v) {
        const bool equal = pr_tolerance > 0.0
                               ? std::abs(base.rank[v] - other.rank[v]) <= pr_tolerance
                               : base.rank[v] == other.rank[v];
        if (!equal) m.add(v, other.rank[v], base.rank[v]);
      }
    }
  }
  {
    Mismatches m(out, oracle, "components");
    const auto a = normalize_cc ? normalize_components(base.component) : base.component;
    const auto b = normalize_cc ? normalize_components(other.component) : other.component;
    if (a.size() != b.size()) {
      m.note("size " + std::to_string(b.size()));
    } else {
      for (std::size_t v = 0; v < a.size(); ++v) {
        if (a[v] != b[v]) m.add(v, b[v], a[v]);
      }
    }
  }
  {
    // Stream-path runs carry their per-epoch answers here; two variants of
    // the same config must agree batch by batch, not just on entry 0.
    Mismatches m(out, oracle, "stream epochs");
    if (base.epochs.size() != other.epochs.size()) {
      m.note("epoch count " + std::to_string(other.epochs.size()));
    } else {
      for (std::size_t i = 0; i < base.epochs.size(); ++i) {
        const auto& a = base.epochs[i];
        const auto& b = other.epochs[i];
        if (a.epoch != b.epoch || a.inserted != b.inserted ||
            a.deleted != b.deleted) {
          m.add(i, "bookkeeping", "equal");
          continue;
        }
        if (a.levels != b.levels) {
          m.add(i, "levels", "equal");
          continue;
        }
        bool rank_ok = a.rank.size() == b.rank.size();
        for (std::size_t v = 0; rank_ok && v < a.rank.size(); ++v) {
          rank_ok = pr_tolerance > 0.0
                        ? std::abs(a.rank[v] - b.rank[v]) <= pr_tolerance
                        : a.rank[v] == b.rank[v];
        }
        if (!rank_ok) {
          m.add(i, "rank", "equal");
          continue;
        }
        const auto ca = normalize_cc ? normalize_components(a.component) : a.component;
        const auto cb = normalize_cc ? normalize_components(b.component) : b.component;
        if (ca != cb) m.add(i, "components", "equal");
      }
    }
  }
  if (compare_lp) {
    Mismatches m(out, oracle, "lp labels");
    if (base.lp_label.size() != other.lp_label.size()) {
      m.note("size " + std::to_string(other.lp_label.size()));
    } else {
      for (std::size_t v = 0; v < base.lp_label.size(); ++v) {
        if (base.lp_label[v] != other.lp_label[v]) {
          m.add(v, other.lp_label[v], base.lp_label[v]);
        }
      }
      if (base.lp_total_updates != other.lp_total_updates) {
        m.note("total updates " + std::to_string(other.lp_total_updates) + " want " +
               std::to_string(base.lp_total_updates));
      }
    }
  }
  return out;
}

}  // namespace hpcg::check

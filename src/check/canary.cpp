#include "check/canary.hpp"

#include <ostream>

namespace hpcg::check {

namespace {

CheckConfig base_config(const std::string& algo) {
  CheckConfig cfg;
  cfg.gen = "er";
  cfg.scale = 6;
  cfg.edge_factor = 8;
  cfg.seed = 11;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.algo = algo;
  cfg.root = 3;
  cfg.iterations = 4;
  return cfg;
}

}  // namespace

std::vector<CanaryCase> canary_suite() {
  std::vector<CanaryCase> suite;
  suite.push_back({Canary::kBfsLevelOffByOne, base_config("bfs")});
  suite.push_back({Canary::kBfsDropReached, base_config("bfs")});
  suite.push_back({Canary::kPrMassLeak, base_config("pr")});
  suite.push_back({Canary::kCcSplitLabel, base_config("cc")});
  {
    // Sparse low-degree input where one fewer round visibly changes
    // labels (dense ER converges too fast to tell 3 rounds from 4).
    CheckConfig cfg = base_config("lp");
    cfg.edge_factor = 4;
    cfg.seed = 7;
    cfg.iterations = 3;
    suite.push_back({Canary::kLpStaleIteration, cfg});
  }
  {
    CheckConfig cfg = base_config("msbfs");
    cfg.sources = {0, 17, 40};
    suite.push_back({Canary::kMsBfsCrossTalk, cfg});
  }
  {
    // LP under a mid-run crash with checkpointing requested; the canary
    // drops the Checkpointer wiring, reproducing the replay-from-zero
    // bug the recovery oracle exists to catch.
    CheckConfig cfg = base_config("lp");
    cfg.iterations = 6;
    cfg.faults = "crash@r1:s2";
    cfg.fault_seed = 5;
    cfg.checkpoint_every = 1;
    suite.push_back({Canary::kLpRestartFromZero, cfg});
  }
  {
    // Streaming CC: the canary hands the post-mutation query the
    // pre-mutation payload (the stale-cache bug epoch versioning
    // prevents); the stream oracle's per-epoch replay must notice.
    CheckConfig cfg = base_config("cc");
    cfg.mut_batches = 2;
    cfg.mut_ops = 8;
    cfg.mut_seed = 3;
    cfg.mut_delete_pct = 30;
    suite.push_back({Canary::kStreamStaleResult, cfg});
  }
  {
    // Streaming BFS: the canary tears the final commit in half while the
    // bookkeeping still claims the full batch — the torn-commit bug the
    // transactional stage-then-swap exists to prevent. The stream
    // oracle's host-mirror replay must see the payload diverge from the
    // claimed epoch.
    // Sparse input: on the dense default any half batch of edges is
    // level-invisible; at ef=1 the torn final commit changes reachability
    // for dozens of vertices (seed pair pinned by scanning for a tear the
    // levels actually see).
    CheckConfig cfg = base_config("bfs");
    cfg.edge_factor = 1;
    cfg.seed = 1;
    cfg.mut_batches = 2;
    cfg.mut_ops = 12;
    cfg.mut_seed = 4;
    cfg.mut_delete_pct = 50;  // deletes make the tear structurally visible
    suite.push_back({Canary::kHalfAppliedCommit, cfg});
  }
  return suite;
}

std::vector<CanaryOutcome> run_canaries(std::ostream* log) {
  std::vector<CanaryOutcome> outcomes;
  const auto el_cache = [](const CheckConfig& cfg) { return build_input(cfg); };
  for (const CanaryCase& c : canary_suite()) {
    CanaryOutcome outcome;
    outcome.canary = c.canary;
    try {
      const RunResult result = run_config(c.config, c.canary);
      const auto el = el_cache(c.config);
      for (auto&& f : check_reference(c.config, el, result)) {
        outcome.failures.push_back(std::move(f));
      }
      for (auto&& f : check_invariants(c.config, el, result)) {
        outcome.failures.push_back(std::move(f));
      }
      for (auto&& f : check_recovery(c.config, result)) {
        outcome.failures.push_back(std::move(f));
      }
      for (auto&& f : check_stream(c.config, el, result)) {
        outcome.failures.push_back(std::move(f));
      }
    } catch (const std::exception& e) {
      // A canary that makes the engine throw is still "caught".
      outcome.failures.push_back({"exception", e.what()});
    }
    outcome.caught = !outcome.failures.empty();
    if (log) {
      *log << (outcome.caught ? "caught " : "MISSED ") << to_string(c.canary);
      if (outcome.caught) {
        *log << " via [" << outcome.failures.front().oracle << "] "
             << outcome.failures.front().detail;
      }
      *log << "\n";
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace hpcg::check

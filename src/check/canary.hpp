// Mutation canaries: deliberately broken runs that MUST trip an oracle.
// `hpcg_check --canary` runs the suite and fails loudly if any injected
// bug slips through — the checker checking itself. Each case pairs a
// Canary mutation with a configuration on which the mutation provably
// changes the answer (verified by tests/test_check.cpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "check/config.hpp"
#include "check/oracles.hpp"
#include "check/runner.hpp"

namespace hpcg::check {

struct CanaryCase {
  Canary canary = Canary::kNone;
  CheckConfig config;
};

struct CanaryOutcome {
  Canary canary = Canary::kNone;
  bool caught = false;
  std::vector<Failure> failures;  // what tripped (empty when missed)
};

/// The built-in suite: one case per Canary mutation.
std::vector<CanaryCase> canary_suite();

/// Runs every case through the non-identity oracles. Returns one outcome
/// per case; `all caught` is the green condition CI asserts.
std::vector<CanaryOutcome> run_canaries(std::ostream* log);

}  // namespace hpcg::check

// One point in the engine's configuration cross-product, and the seeded
// sampler that draws from it.
//
// A CheckConfig pins everything a differential run needs to be
// reproducible: the generated input (generator x scale x edge factor x
// seed), the placement (grid shape), the algorithm and its parameters,
// and the execution mode (sync/async + chunking, fault plan + seed,
// checkpoint interval, serve-path batching). Its textual form round-trips
// through parse(), so a failing configuration is a one-line reproducer:
//
//   hpcg_check --config='gen=rmat scale=6 ef=8 grid=2x3 algo=lp seed=9
//                        faults=crash@r1:s2 ckpt=1 iters=6'
//
// Sampling is a pure function of the Xoshiro stream, so sweep k of seed s
// examines the same configs on every machine, every time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/prng.hpp"

namespace hpcg::check {

using graph::Gid;

struct CheckConfig {
  // Input graph.
  std::string gen = "rmat";  // rmat | er | ba (preferential attachment)
  int scale = 6;             // n = 2^scale vertices
  int edge_factor = 8;       // ~edge_factor * n directed entries pre-symmetrize
  std::uint64_t seed = 1;    // generator seed

  // Placement.
  int rows = 2;
  int cols = 2;

  // Algorithm + parameters.
  std::string algo = "bfs";  // bfs | msbfs | pr | prwarm | cc | lp
  Gid root = 0;              // bfs source
  std::vector<Gid> sources;  // msbfs sources / serve-path batch roots
  int iterations = 4;        // pr / prwarm (total) / lp rounds
  int warm_split = 2;        // prwarm: cold iterations before the warm leg

  // Execution mode.
  bool async = false;  // nonblocking chunked exchanges (RunOptions::async)
  int chunk = 1;       // async pipeline segments
  int thr = 1;         // worker-pool threads per rank (KernelOptions::threads)
  std::string faults;  // fault plan (docs/FAULTS.md grammar); empty = none
  std::uint64_t fault_seed = 0;
  std::int64_t checkpoint_every = 0;  // supersteps; 0 = off
  int serve_batch = 0;  // >0 (bfs only): route `sources` through Service
                        // coalescing with this max_batch

  // Streaming mutations (bfs | pr | cc only): >0 routes the run through
  // the serve session, interleaving `mut_batches` seeded mutation batches
  // of `mut_ops` edge ops each with re-queries of `algo`. Edge picks are
  // generate_ops(mut_seed, batch_index, ...) with mut_delete_pct% deletes
  // aimed at live edges, so the stream replays bit-identically anywhere.
  int mut_batches = 0;
  int mut_ops = 8;
  std::uint64_t mut_seed = 1;
  int mut_delete_pct = 30;

  // Supervised streaming (docs/RECOVERY.md): >0 runs the streaming path
  // under a serve::Supervisor with this restart budget instead of a bare
  // Session + Service, which makes kill faults (crash / silent) legal on
  // mut= configs — the supervisor rebuilds the session from its committed
  // log and the run must still match the host mirror bit-identically.
  int sup = 0;

  // Collective selection policy (docs/TUNING.md): "fixed" is the legacy
  // single-algorithm cost model, "adaptive" attaches the topology-derived
  // reference calibration. Results must be bit-identical either way — the
  // policy changes modeled time only, so every oracle comparison doubles
  // as a check of that invariant.
  std::string pol = "fixed";

  int ranks() const { return rows * cols; }
  Gid n() const { return Gid{1} << scale; }

  /// True when `algo` accepts a fault::Checkpointer (bfs, pr, cc, lp).
  bool checkpointable() const;

  /// Compact `key=value ...` form; parse() round-trips it exactly.
  std::string to_string() const;

  /// One-line reproducer command for this config.
  std::string command() const;

  /// Inverse of to_string(). Unknown keys, malformed values and
  /// out-of-range dimensions throw std::invalid_argument naming the
  /// offending token.
  static CheckConfig parse(const std::string& text);
};

/// Draws one configuration from the full cross-product. Coherence rules
/// (enforced here so every sample is runnable): crash/silent/corrupt
/// faults only on checkpointable algorithms run through the recovery
/// driver; serve-path batching only for bfs with session-survivable
/// fault kinds (transient/degrade); checkpointing only where a
/// Checkpointer can be wired; streaming mutations only for bfs/pr/cc on
/// the serve session (no checkpointing, no serve batch; kill faults only
/// under supervision, i.e. with sup > 0).
CheckConfig sample_config(util::Xoshiro256& rng);

}  // namespace hpcg::check

// Delta-debugging over configuration dimensions: given a failing
// CheckConfig and a predicate "does it still fail?", greedily apply
// simplifying moves (drop the fault plan, leave the serve path, turn off
// async, shrink the graph, flatten the grid, pull sources/roots to zero)
// and keep each move that preserves the failure. The result is the
// smallest reproducer the move set can reach — what lands in the corpus
// and in the failure report.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/config.hpp"

namespace hpcg::check {

struct ShrinkResult {
  CheckConfig config;       // smallest still-failing configuration found
  int attempts = 0;         // predicate evaluations spent
  std::vector<std::string> accepted;  // moves that kept the failure alive
};

/// `still_fails` must return true when the candidate config reproduces
/// the original failure (it should also return true for the input
/// config). At most `max_attempts` predicate evaluations are spent; the
/// scan restarts from the first move after every accepted simplification.
ShrinkResult shrink(const CheckConfig& failing,
                    const std::function<bool(const CheckConfig&)>& still_fails,
                    int max_attempts = 64);

}  // namespace hpcg::check

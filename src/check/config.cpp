#include "check/config.hpp"

#include <sstream>
#include <stdexcept>

namespace hpcg::check {

namespace {

std::vector<Gid> parse_gid_list(const std::string& key, const std::string& text) {
  std::vector<Gid> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t used = 0;
    Gid value = 0;
    try {
      value = static_cast<Gid>(std::stoll(item, &used));
    } catch (const std::exception&) {
      used = item.size() + 1;  // force the error path below
    }
    if (used != item.size() || item.empty()) {
      throw std::invalid_argument("bad config value " + key + "=" + text);
    }
    out.push_back(value);
  }
  return out;
}

std::int64_t parse_num(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = text.size() + 1;
  }
  if (used != text.size() || text.empty()) {
    throw std::invalid_argument("bad config value " + key + "=" + text);
  }
  return value;
}

}  // namespace

bool CheckConfig::checkpointable() const {
  return algo == "bfs" || algo == "pr" || algo == "cc" || algo == "lp";
}

std::string CheckConfig::to_string() const {
  std::ostringstream out;
  out << "gen=" << gen << " scale=" << scale << " ef=" << edge_factor
      << " seed=" << seed << " grid=" << rows << "x" << cols << " algo=" << algo;
  if (algo == "bfs" && serve_batch == 0) out << " root=" << root;
  if (!sources.empty()) {
    out << " sources=";
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (i) out << ",";
      out << sources[i];
    }
  }
  if (algo == "pr" || algo == "prwarm" || algo == "lp") out << " iters=" << iterations;
  if (algo == "prwarm") out << " warm=" << warm_split;
  if (async) out << " async=1 chunk=" << chunk;
  if (thr > 1) out << " thr=" << thr;
  if (!faults.empty()) out << " faults=" << faults << " fseed=" << fault_seed;
  if (checkpoint_every > 0) out << " ckpt=" << checkpoint_every;
  if (serve_batch > 0) out << " serve=" << serve_batch;
  if (mut_batches > 0) {
    out << " mut=" << mut_batches << "x" << mut_ops << " mseed=" << mut_seed
        << " mdel=" << mut_delete_pct;
  }
  if (sup > 0) out << " sup=" << sup;
  if (pol != "fixed") out << " pol=" << pol;
  return out.str();
}

std::string CheckConfig::command() const {
  return "hpcg_check --config='" + to_string() + "'";
}

CheckConfig CheckConfig::parse(const std::string& text) {
  CheckConfig cfg;
  cfg.sources.clear();
  std::stringstream ss(text);
  std::string token;
  while (ss >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("bad config token: " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "gen") {
      if (value != "rmat" && value != "er" && value != "ba") {
        throw std::invalid_argument("bad config value gen=" + value);
      }
      cfg.gen = value;
    } else if (key == "scale") {
      cfg.scale = static_cast<int>(parse_num(key, value));
      if (cfg.scale < 1 || cfg.scale > 24) {
        throw std::invalid_argument("bad config value scale=" + value);
      }
    } else if (key == "ef") {
      cfg.edge_factor = static_cast<int>(parse_num(key, value));
      if (cfg.edge_factor < 1) {
        throw std::invalid_argument("bad config value ef=" + value);
      }
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "grid") {
      const auto x = value.find('x');
      if (x == std::string::npos) {
        throw std::invalid_argument("bad config value grid=" + value);
      }
      cfg.rows = static_cast<int>(parse_num(key, value.substr(0, x)));
      cfg.cols = static_cast<int>(parse_num(key, value.substr(x + 1)));
      if (cfg.rows < 1 || cfg.cols < 1 || cfg.rows * cfg.cols > 64) {
        throw std::invalid_argument("bad config value grid=" + value);
      }
    } else if (key == "algo") {
      if (value != "bfs" && value != "msbfs" && value != "pr" &&
          value != "prwarm" && value != "cc" && value != "lp") {
        throw std::invalid_argument("bad config value algo=" + value);
      }
      cfg.algo = value;
    } else if (key == "root") {
      cfg.root = static_cast<Gid>(parse_num(key, value));
    } else if (key == "sources") {
      cfg.sources = parse_gid_list(key, value);
    } else if (key == "iters") {
      cfg.iterations = static_cast<int>(parse_num(key, value));
      if (cfg.iterations < 1) {
        throw std::invalid_argument("bad config value iters=" + value);
      }
    } else if (key == "warm") {
      cfg.warm_split = static_cast<int>(parse_num(key, value));
    } else if (key == "async") {
      cfg.async = parse_num(key, value) != 0;
    } else if (key == "chunk") {
      cfg.chunk = static_cast<int>(parse_num(key, value));
      if (cfg.chunk < 1) {
        throw std::invalid_argument("bad config value chunk=" + value);
      }
    } else if (key == "thr") {
      cfg.thr = static_cast<int>(parse_num(key, value));
      if (cfg.thr < 1 || cfg.thr > 8) {
        throw std::invalid_argument("bad config value thr=" + value);
      }
    } else if (key == "faults") {
      cfg.faults = value;
    } else if (key == "fseed") {
      cfg.fault_seed = static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "ckpt") {
      cfg.checkpoint_every = parse_num(key, value);
    } else if (key == "serve") {
      cfg.serve_batch = static_cast<int>(parse_num(key, value));
    } else if (key == "mut") {
      const auto x = value.find('x');
      if (x == std::string::npos) {
        throw std::invalid_argument("bad config value mut=" + value);
      }
      cfg.mut_batches = static_cast<int>(parse_num(key, value.substr(0, x)));
      cfg.mut_ops = static_cast<int>(parse_num(key, value.substr(x + 1)));
      if (cfg.mut_batches < 1 || cfg.mut_ops < 1) {
        throw std::invalid_argument("bad config value mut=" + value);
      }
    } else if (key == "mseed") {
      cfg.mut_seed = static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "mdel") {
      cfg.mut_delete_pct = static_cast<int>(parse_num(key, value));
      if (cfg.mut_delete_pct < 0 || cfg.mut_delete_pct > 100) {
        throw std::invalid_argument("bad config value mdel=" + value);
      }
    } else if (key == "sup") {
      cfg.sup = static_cast<int>(parse_num(key, value));
      if (cfg.sup < 0) {
        throw std::invalid_argument("bad config value sup=" + value);
      }
    } else if (key == "pol") {
      if (value != "fixed" && value != "adaptive") {
        throw std::invalid_argument("bad config value pol=" + value);
      }
      cfg.pol = value;
    } else {
      throw std::invalid_argument("unknown config key: " + key);
    }
  }
  return cfg;
}

namespace {

template <class T>
T pick(util::Xoshiro256& rng, std::initializer_list<T> options) {
  auto it = options.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(
                       rng.next_below(static_cast<std::uint64_t>(options.size()))));
  return *it;
}

}  // namespace

CheckConfig sample_config(util::Xoshiro256& rng) {
  CheckConfig cfg;
  cfg.gen = pick(rng, {"rmat", "rmat", "er", "ba"});  // skew-heavy by default
  cfg.scale = 5 + static_cast<int>(rng.next_below(4));  // 32..256 vertices
  cfg.edge_factor = 4 + static_cast<int>(rng.next_below(9));
  cfg.seed = 1 + rng.next_below(1u << 20);

  // Square, non-square, row-only and column-only placements.
  const auto shape = pick<std::pair<int, int>>(
      rng, {{1, 1}, {2, 2}, {2, 3}, {3, 2}, {2, 4}, {1, 2}, {1, 4}, {1, 6}, {2, 1}, {4, 1}});
  cfg.rows = shape.first;
  cfg.cols = shape.second;

  cfg.algo = pick(rng, {"bfs", "bfs", "msbfs", "pr", "prwarm", "cc", "lp"});
  const Gid n = cfg.n();
  cfg.root = static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n)));

  if (cfg.algo == "msbfs") {
    const int k = 2 + static_cast<int>(rng.next_below(7));  // 2..8 sources
    for (int i = 0; i < k; ++i) {
      cfg.sources.push_back(
          static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n))));
    }
  }
  if (cfg.algo == "pr" || cfg.algo == "prwarm" || cfg.algo == "lp") {
    cfg.iterations = 2 + static_cast<int>(rng.next_below(5));  // 2..6
  }
  if (cfg.algo == "prwarm") {
    if (cfg.iterations < 2) cfg.iterations = 2;
    cfg.warm_split =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cfg.iterations - 1)));
  }

  cfg.async = rng.next_below(10) < 4;
  cfg.chunk = cfg.async ? 1 + static_cast<int>(rng.next_below(4)) : 1;
  // Worker-pool threads: results must be bit-identical for any setting, so
  // the sampler keeps the parallel configs in the mix alongside serial.
  cfg.thr = pick(rng, {1, 1, 2, 4});

  // Streaming mutations: bfs / pr / cc on the serve session, interleaving
  // seeded mutation batches with re-queries. Delete share skews toward
  // insert-only so the incremental (non-fallback) paths stay hot; 50%
  // batches hammer the structural-delete recompute rule.
  if ((cfg.algo == "bfs" || cfg.algo == "pr" || cfg.algo == "cc") &&
      rng.next_below(100) < 28) {
    cfg.mut_batches = 1 + static_cast<int>(rng.next_below(4));  // 1..4
    cfg.mut_ops = 2 + static_cast<int>(rng.next_below(15));     // 2..16
    cfg.mut_seed = 1 + rng.next_below(1u << 16);
    cfg.mut_delete_pct = pick(rng, {0, 0, 20, 50});
  }

  // Serve-path batching: bfs only. The batch routes through
  // Session + Service manual pumps instead of a direct Runtime::run.
  if (cfg.algo == "bfs" && cfg.mut_batches == 0 && rng.next_below(10) < 3) {
    cfg.serve_batch = 2 + static_cast<int>(rng.next_below(3));  // 2..4
    const int k = cfg.serve_batch + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < k; ++i) {
      cfg.sources.push_back(
          static_cast<Gid>(rng.next_below(static_cast<std::uint64_t>(n))));
    }
  }

  // Checkpoint interval independent of faults: exercises the save path
  // (and the recovery driver's zero-restart mode) on its own.
  if (cfg.checkpointable() && cfg.serve_batch == 0 && cfg.mut_batches == 0 &&
      rng.next_below(10) < 2) {
    cfg.checkpoint_every = 1 + static_cast<std::int64_t>(rng.next_below(2));
  }

  // Fault plans. Kill faults (crash / silent) need a recovery story: the
  // checkpoint/restart driver on the direct path, or a serve::Supervisor on
  // the streaming path (sup=N, docs/RECOVERY.md); transient/degrade are
  // survivable in any path. Silent deaths cost a wall-clock timeout each,
  // so they are sampled rarely (the runner clamps the timeout to keep
  // sweeps fast).
  const std::uint64_t fault_roll = rng.next_below(100);
  const int target = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(cfg.ranks())));
  cfg.fault_seed = 1 + rng.next_below(1u << 16);
  std::ostringstream plan;
  if (cfg.mut_batches > 0 && fault_roll < 14) {
    // Supervised streaming recovery: a crash mid-stream kills the serve
    // session; the supervisor must rebuild from its committed log and the
    // remaining epochs must still match the host mirror.
    cfg.sup = 1 + static_cast<int>(rng.next_below(2));  // restart budget 1..2
    plan << "crash@r" << target << ":s" << 1 + rng.next_below(30);
  } else if (cfg.checkpointable() && cfg.serve_batch == 0 &&
             cfg.mut_batches == 0 && fault_roll < 14) {
    // crash or (rarely) silent: needs checkpoint + restart.
    const bool silent = fault_roll < 2 && cfg.ranks() > 1;
    plan << (silent ? "silent" : "crash") << "@r" << target << ":s"
         << 1 + rng.next_below(3);
    if (cfg.ranks() == 1 && !silent) plan.str("");  // lone rank: nobody to recover with
    if (!plan.str().empty()) {
      cfg.checkpoint_every = 1 + static_cast<std::int64_t>(rng.next_below(2));
    }
  } else if (fault_roll < 30) {
    const bool degrade = rng.next_below(2) == 0;
    if (degrade) {
      plan << "degrade@r" << target << ":n" << 2 + rng.next_below(6) << ":x4:f4";
    } else {
      plan << "transient@r" << target << ":n" << 2 + rng.next_below(6) << ":x2";
    }
  }
  cfg.faults = plan.str();
  if (cfg.faults.empty()) cfg.fault_seed = 0;

  // Collective policy flip, drawn LAST so pre-existing seeds keep sampling
  // the same configurations up to this field. About a third of the sweep
  // runs adaptive; the oracle comparison then asserts the policy's
  // bit-identity invariant for free.
  if (rng.next_below(3) == 0) cfg.pol = "adaptive";
  return cfg;
}

}  // namespace hpcg::check

// Executes one CheckConfig through the REAL engine paths — a direct
// Runtime::run, the fault::run_with_recovery driver, or a resident
// Session + Service with manual pumping — and collects the results in a
// distribution-independent form the oracles can compare: original-id
// positions, reference conventions (-1 for unreachable), plus the
// recovery bookkeeping of the attempt.
//
// The runner is also where canary mutations live: a Canary deliberately
// re-introduces a representative engine bug (off-by-one levels, dropped
// frontier entries, leaked PageRank mass, split components, stale LP
// rounds, cross-talking multi-source batches, checkpoint-less restart).
// `hpcg_check --canary` asserts that every one of them trips an oracle —
// the fuzzer's own regression test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/config.hpp"
#include "graph/edge_list.hpp"

namespace hpcg::check {

enum class Canary : std::uint8_t {
  kNone = 0,
  kBfsLevelOffByOne,    // one reachable vertex reports level + 1
  kBfsDropReached,      // one reachable vertex reports unreachable
  kPrMassLeak,          // one rank entry loses 0.1% of its mass
  kCcSplitLabel,        // one vertex splits off into a private component
  kLpStaleIteration,    // engine runs one round fewer than requested
  kMsBfsCrossTalk,      // source 1 answers with source 0's levels
  kLpRestartFromZero,   // recovery replays LP without a Checkpointer
  kStreamStaleResult,   // post-mutation query answers with pre-mutation data
  kHalfAppliedCommit,   // final batch torn in half, bookkeeping claims full
};

const char* to_string(Canary canary);

struct RunResult {
  // Original-id-indexed results; only the config's algorithm fills its
  // vectors. Levels use the reference convention (-1 = unreachable).
  std::vector<std::int64_t> levels;                  // bfs
  std::vector<std::vector<std::int64_t>> ms_levels;  // msbfs / serve, per source
  std::vector<double> rank;                          // pr / prwarm
  // CC / LP labels keyed by ORIGINAL vertex position but carrying the raw
  // STRIPED label value the engine computed (striping is a function of
  // (n, grid rows), so oracles can reconstruct it; CC comparisons
  // normalize to min-original-member canonical labels).
  std::vector<graph::Gid> component;
  std::vector<std::uint64_t> lp_label;
  std::int64_t lp_total_updates = 0;

  // Recovery bookkeeping (zero / empty on the direct and serve paths).
  int restarts = 0;
  std::int64_t checkpoints_committed = 0;
  std::vector<std::int64_t> resume_epochs;

  // Supervised streaming (sup=N): session rebuilds the serve::Supervisor
  // performed, and how many kill faults the plan actually FIRED — the
  // recovery oracle demands restarts only when a kill fault fired (a
  // trigger past the run's last superstep legitimately never fires).
  int serve_restarts = 0;
  int kill_faults_fired = 0;

  // Streaming path: one entry per query, entry 0 before any mutation and
  // then one per committed batch. The top-level vectors above hold a copy
  // of entry 0 so the reference/invariant oracles see the pre-mutation
  // answer; per-epoch answers live here for the stream oracle.
  struct EpochResult {
    std::uint64_t epoch = 0;          // graph epoch the query ran at
    std::int64_t inserted = 0;        // directed copies added by the batch
    std::int64_t deleted = 0;         // directed copies removed by the batch
    bool incremental = false;         // served by an incremental kernel
    bool recovered = false;           // a session rebuild happened since the
                                      // previous query (sup= path only):
                                      // resident state was lost, so the
                                      // incremental-decision pin is waived
    std::vector<std::int64_t> levels;     // bfs (-1 = unreachable)
    std::vector<double> rank;             // pr (tolerance solve)
    std::vector<graph::Gid> component;    // cc
  };
  std::vector<EpochResult> epochs;

  std::string path;  // "direct" | "recovery" | "serve" | "stream"
};

/// The config's input graph in final (symmetrized, loop-free) form.
/// Deterministic in (gen, scale, ef, seed).
graph::EdgeList build_input(const CheckConfig& cfg);

/// Which execution path run_config will take for `cfg`.
std::string path_for(const CheckConfig& cfg);

/// Runs `cfg` end to end. Throws what the engine throws (CommError after
/// exhausted restarts, ServeError, std::invalid_argument) — the fuzzer
/// records uncaught exceptions as failures in their own right.
RunResult run_config(const CheckConfig& cfg, Canary canary = Canary::kNone);

}  // namespace hpcg::check

// Trace inspector: loads a Chrome trace-event JSON produced by
// `hpcg_run --trace-out=...` and prints the per-rank and per-superstep
// computation/communication breakdown, the load-imbalance ratio
// (max/mean rank time per superstep), the straggler rank and the
// bulk-synchronous critical path.
//
//   hpcg_trace pr.json
//   hpcg_trace pr.json --top=12          # truncate the superstep table
//   hpcg_trace pr.json --csv             # machine-readable superstep rows
//   hpcg_trace pr.json --summary         # one line: makespan, comm and
//                                        # overlap fractions (CI-friendly)
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "comm/policy.hpp"
#include "comm/stats.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/report.hpp"
#include "tune/calibration.hpp"
#include "util/parse.hpp"

namespace {

constexpr const char* kUsage =
    "usage: hpcg_trace <trace.json> [options]\n"
    "Analyze a Chrome trace JSON written by hpcg_run --trace-out=...\n"
    "\n"
    "  --top=N              truncate the superstep table to the N slowest\n"
    "  --csv                machine-readable superstep rows\n"
    "  --summary            one line: makespan, comm and overlap fractions\n"
    "  --calibration=FILE   calibration.json (with --cost-trace: print the\n"
    "                       modeled-vs-fitted collective table; rows whose\n"
    "                       modeled cost deviates >20%% from the fitted\n"
    "                       prediction are flagged)\n"
    "  --cost-trace=FILE    cost-event CSV written by hpcg_run --trace=...\n"
    "                       (the trace.json positional becomes optional)\n"
    "  --help               show this text and exit\n";

int usage() {
  std::cerr << kUsage;
  return 2;
}

/// Maps a traced collective onto the fitted kDefault formula that predicts
/// it: (formula op, cost scale). Rooted halves of symmetric collectives are
/// modeled as half an allreduce / one broadcast traversal; multi_broadcast
/// overlaps member ops and has no single-formula analog (skipped).
bool fitted_mapping(hpcg::comm::CollectiveOp op,
                    hpcg::comm::CollectiveOp* formula_op, double* scale) {
  using Op = hpcg::comm::CollectiveOp;
  *scale = 1.0;
  switch (op) {
    case Op::kBarrier:
    case Op::kAllReduce:
      *formula_op = Op::kAllReduce;
      return true;
    case Op::kReduce:
    case Op::kReduceScatter:
      *formula_op = Op::kAllReduce;
      *scale = 0.5;
      return true;
    case Op::kBroadcast:
    case Op::kGather:
    case Op::kScatter:
      *formula_op = Op::kBroadcast;
      return true;
    case Op::kAllGather:
    case Op::kAllGatherV:
    case Op::kSplit:
      *formula_op = Op::kAllGather;
      return true;
    case Op::kAllToAllV:
      *formula_op = Op::kAllToAllV;
      return true;
    case Op::kMultiBroadcast:
      return false;
  }
  return false;
}

hpcg::comm::CollectiveOp op_from_csv(const std::string& name) {
  using Op = hpcg::comm::CollectiveOp;
  for (const Op op :
       {Op::kBarrier, Op::kBroadcast, Op::kMultiBroadcast, Op::kAllReduce,
        Op::kReduce, Op::kReduceScatter, Op::kGather, Op::kScatter,
        Op::kAllGather, Op::kAllGatherV, Op::kAllToAllV, Op::kSplit}) {
    if (name == hpcg::comm::to_string(op)) return op;
  }
  throw std::invalid_argument("cost trace: unknown op '" + name + "'");
}

/// Modeled-vs-fitted comparison: aggregates the cost-event CSV by
/// (op, level, group size) and predicts each group's cost from the
/// calibration's fitted constants. Deviations beyond 20% are flagged —
/// note alltoallv records *total* bytes while its charge uses max per-rank
/// traffic, so a flagged alltoallv usually means traffic skew, not a bad
/// fit (docs/TUNING.md).
int print_fitted_table(const std::string& cost_trace_path,
                       const std::string& calibration_path) {
  const auto cal = hpcg::tune::Calibration::load(calibration_path);
  std::ifstream in(cost_trace_path);
  if (!in) {
    std::cerr << "error: cannot open cost trace " << cost_trace_path << "\n";
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line != "end_time_s,cost_s,op,group_size,bytes,level") {
    std::cerr << "error: " << cost_trace_path
              << ": expected header 'end_time_s,cost_s,op,group_size,bytes,"
                 "level' (re-run hpcg_run --trace=... from this build)\n";
    return 1;
  }
  struct Agg {
    int events = 0;
    double modeled_s = 0.0;
    double fitted_s = 0.0;
  };
  std::map<std::tuple<std::string, std::string, int>, Agg> table;
  int skipped = 0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string end_s, cost_s, op_s, group_s, bytes_s, level_s;
    if (!std::getline(row, end_s, ',') || !std::getline(row, cost_s, ',') ||
        !std::getline(row, op_s, ',') || !std::getline(row, group_s, ',') ||
        !std::getline(row, bytes_s, ',') || !std::getline(row, level_s)) {
      std::cerr << "error: " << cost_trace_path << " line " << lineno
                << ": expected 6 fields\n";
      return 1;
    }
    hpcg::comm::CollectiveOp op;
    hpcg::comm::LinkClass level;
    try {
      op = op_from_csv(op_s);
      level = hpcg::comm::link_class_from_string(level_s);
    } catch (const std::exception& e) {
      std::cerr << "error: " << cost_trace_path << " line " << lineno << ": "
                << e.what() << "\n";
      return 1;
    }
    // Checked parses (util/parse.hpp): a garbage, oversized or empty field
    // is a diagnosed bad row, not a crash or a silently truncated value.
    const auto group_v = hpcg::util::parse_int32(group_s);
    const auto bytes_v = hpcg::util::parse_uint64(bytes_s);
    const auto cost_v = hpcg::util::parse_double(cost_s);
    if (!group_v || !bytes_v || !cost_v) {
      std::cerr << "error: " << cost_trace_path << " line " << lineno
                << ": malformed numeric field (group_size='" << group_s
                << "', bytes='" << bytes_s << "', cost_s='" << cost_s
                << "')\n";
      return 1;
    }
    const int group = *group_v;
    const auto bytes = static_cast<std::size_t>(*bytes_v);
    const double cost = *cost_v;
    hpcg::comm::CollectiveOp formula_op;
    double scale = 1.0;
    const auto& fit = cal.level[static_cast<std::size_t>(level)];
    if (group <= 1 || level == hpcg::comm::LinkClass::kSelf || !fit.valid ||
        !fitted_mapping(op, &formula_op, &scale)) {
      ++skipped;
      continue;
    }
    Agg& agg = table[{op_s, level_s, group}];
    ++agg.events;
    agg.modeled_s += cost;
    agg.fitted_s +=
        scale * hpcg::comm::algo_cost(
                    formula_op, hpcg::comm::CollectiveAlgo::kDefault,
                    fit.alpha_s, fit.software_alpha_s, fit.beta_bytes_s, group,
                    bytes);
  }
  std::printf("modeled vs fitted (%s against %s):\n", cost_trace_path.c_str(),
              calibration_path.c_str());
  std::printf("%-16s %-12s %6s %8s %12s %12s %9s\n", "op", "level", "group",
              "events", "modeled_s", "fitted_s", "delta");
  int flagged = 0;
  for (const auto& [key, agg] : table) {
    const double denom = std::max(agg.fitted_s, 1e-300);
    const double delta = (agg.modeled_s - agg.fitted_s) / denom;
    const bool flag = std::abs(delta) > 0.20;
    flagged += flag ? 1 : 0;
    std::printf("%-16s %-12s %6d %8d %12.5g %12.5g %+8.1f%%%s\n",
                std::get<0>(key).c_str(), std::get<1>(key).c_str(),
                std::get<2>(key), agg.events, agg.modeled_s, agg.fitted_s,
                100.0 * delta, flag ? "  <-- >20%" : "");
  }
  if (skipped > 0) {
    std::printf("(%d events skipped: single-rank, unfitted level, or "
                "multi_broadcast)\n",
                skipped);
  }
  std::printf("%d row(s) deviate beyond 20%% of the fitted prediction\n",
              flagged);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string calibration_path;
  std::string cost_trace_path;
  int top = 0;
  bool csv = false;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg.starts_with("--top=")) {
      const auto parsed = hpcg::util::parse_int32(std::string(arg.substr(6)));
      if (!parsed) {
        std::cerr << "error: --top expects an integer, got '" << arg.substr(6)
                  << "'\n";
        return 2;
      }
      top = *parsed;
    } else if (arg.starts_with("--calibration=")) {
      calibration_path = arg.substr(14);
    } else if (arg.starts_with("--cost-trace=")) {
      cost_trace_path = arg.substr(13);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg.starts_with("--")) {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (!calibration_path.empty() || !cost_trace_path.empty()) {
    if (calibration_path.empty() || cost_trace_path.empty()) {
      std::cerr << "error: --calibration and --cost-trace must be given "
                   "together\n";
      return 2;
    }
    int rc;
    try {
      rc = print_fitted_table(cost_trace_path, calibration_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    if (rc != 0 || path.empty()) return rc;
    std::printf("\n");
  }
  if (path.empty()) return usage();

  hpcg::telemetry::TraceFile trace;
  try {
    trace = hpcg::telemetry::read_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const auto report = hpcg::telemetry::analyze(trace.spans, trace.nranks);

  if (summary) {
    // One machine-parseable line for CI logs and quick comparisons:
    // comm_frac is the slowest rank's collective share of the makespan,
    // overlap_frac the share of async comm that was hidden under compute
    // (0 for fully synchronous runs).
    const double makespan = report.makespan_s;
    const double comm_frac = makespan > 0.0 ? report.comm_max_s / makespan : 0.0;
    const double visible = report.comm_max_s + report.overlap_max_s;
    const double overlap_frac =
        visible > 0.0 ? report.overlap_max_s / visible : 0.0;
    std::cout << "ranks=" << report.nranks << " makespan_s=" << makespan
              << " comp_max_s=" << report.comp_max_s
              << " comm_max_s=" << report.comm_max_s
              << " overlap_max_s=" << report.overlap_max_s
              << " comm_frac=" << comm_frac << " overlap_frac=" << overlap_frac
              << " imbalance=" << report.mean_imbalance << "\n";
    return 0;
  }

  if (csv) {
    std::cout << "superstep,label,active_vertices,comp_max_s,comm_max_s,"
                 "rank_max_s,rank_mean_s,imbalance,straggler\n";
    for (const auto& step : report.supersteps) {
      std::cout << step.index << "," << step.label << ","
                << step.active_vertices << "," << step.comp_max_s << ","
                << step.comm_max_s << "," << step.rank_max_s << ","
                << step.rank_mean_s << "," << step.imbalance << ","
                << step.straggler << "\n";
    }
    return 0;
  }

  std::cout << "trace: " << path << " (" << trace.spans.size() << " spans)\n";
  hpcg::telemetry::print_report(std::cout, report, top);
  return 0;
}

// Trace inspector: loads a Chrome trace-event JSON produced by
// `hpcg_run --trace-out=...` and prints the per-rank and per-superstep
// computation/communication breakdown, the load-imbalance ratio
// (max/mean rank time per superstep), the straggler rank and the
// bulk-synchronous critical path.
//
//   hpcg_trace pr.json
//   hpcg_trace pr.json --top=12          # truncate the superstep table
//   hpcg_trace pr.json --csv             # machine-readable superstep rows
//   hpcg_trace pr.json --summary         # one line: makespan, comm and
//                                        # overlap fractions (CI-friendly)
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/report.hpp"

namespace {

constexpr const char* kUsage =
    "usage: hpcg_trace <trace.json> [options]\n"
    "Analyze a Chrome trace JSON written by hpcg_run --trace-out=...\n"
    "\n"
    "  --top=N     truncate the superstep table to the N slowest\n"
    "  --csv       machine-readable superstep rows\n"
    "  --summary   one line: makespan, comm and overlap fractions\n"
    "  --help      show this text and exit\n";

int usage() {
  std::cerr << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top = 0;
  bool csv = false;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg.starts_with("--top=")) {
      try {
        top = std::stoi(std::string(arg.substr(6)));
      } catch (const std::exception&) {
        std::cerr << "error: --top expects an integer, got '" << arg.substr(6)
                  << "'\n";
        return 2;
      }
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg.starts_with("--")) {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  hpcg::telemetry::TraceFile trace;
  try {
    trace = hpcg::telemetry::read_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const auto report = hpcg::telemetry::analyze(trace.spans, trace.nranks);

  if (summary) {
    // One machine-parseable line for CI logs and quick comparisons:
    // comm_frac is the slowest rank's collective share of the makespan,
    // overlap_frac the share of async comm that was hidden under compute
    // (0 for fully synchronous runs).
    const double makespan = report.makespan_s;
    const double comm_frac = makespan > 0.0 ? report.comm_max_s / makespan : 0.0;
    const double visible = report.comm_max_s + report.overlap_max_s;
    const double overlap_frac =
        visible > 0.0 ? report.overlap_max_s / visible : 0.0;
    std::cout << "ranks=" << report.nranks << " makespan_s=" << makespan
              << " comp_max_s=" << report.comp_max_s
              << " comm_max_s=" << report.comm_max_s
              << " overlap_max_s=" << report.overlap_max_s
              << " comm_frac=" << comm_frac << " overlap_frac=" << overlap_frac
              << " imbalance=" << report.mean_imbalance << "\n";
    return 0;
  }

  if (csv) {
    std::cout << "superstep,label,active_vertices,comp_max_s,comm_max_s,"
                 "rank_max_s,rank_mean_s,imbalance,straggler\n";
    for (const auto& step : report.supersteps) {
      std::cout << step.index << "," << step.label << ","
                << step.active_vertices << "," << step.comp_max_s << ","
                << step.comm_max_s << "," << step.rank_max_s << ","
                << step.rank_mean_s << "," << step.imbalance << ","
                << step.straggler << "\n";
    }
    return 0;
  }

  std::cout << "trace: " << path << " (" << trace.spans.size() << " spans)\n";
  hpcg::telemetry::print_report(std::cout, report, top);
  return 0;
}

// Command-line driver: run any implemented algorithm on any dataset analog
// (or an edge-list file) over an arbitrary grid, with timing, traffic and
// optional verification against the sequential oracles.
//
//   hpcg_run --algo=bfs --graph=tw-mini --ranks=64 [--verify]
//   hpcg_run --algo=cc --file=my_graph.txt --rows=4 --cols=8
//
// Algorithms: bfs, pr, cc, ccsv, mwm, lp, pj, tc, kcore.
//
// Fault injection and recovery (see docs/FAULTS.md):
//   --faults=crash@r2:s3,degrade@r0:n4:x10   seeded deterministic fault plan
//   --fault-seed=42                          resolves r? targets / corrupt bits
//   --checkpoint-every=2                     superstep checkpoint interval
//                                            (bfs, pr, cc, lp; 0 = off)
//   --comm-timeout=0.5                       recv/barrier deadline in seconds
//
// Nonblocking collectives (see docs/ASYNC.md):
//   --async=on|off     opt algorithms into compute-comm overlap (default off)
//   --async-chunk=1    pipeline segments for chunked sparse exchanges; raise
//                      above 1 only when per-segment compute or bandwidth
//                      dominates the collective latency term
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/kcore.hpp"
#include "algos/label_prop.hpp"
#include "algos/mwm.hpp"
#include "algos/pagerank.hpp"
#include "algos/pointer_jump.hpp"
#include "algos/reference.hpp"
#include "algos/triangle_count.hpp"
#include "comm/runtime.hpp"
#include "comm/transport/launcher.hpp"
#include "core/balance.hpp"
#include "fault/file_store.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "core/dist2d.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "tune/calibration.hpp"
#include "util/kernel_flags.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

using hpcg::graph::Gid;

int fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      std::string(
      "usage: hpcg_run [options]\n"
      "Run one algorithm on one dataset over a simulated 2D rank grid.\n"
      "\n"
      "  --algo=NAME          bfs|pr|cc|ccsv|mwm|lp|pj|tc|kcore (default bfs)\n"
      "  --graph=NAME         dataset analog, e.g. rmat14, tw-mini (default rmat14)\n"
      "  --file=PATH          read an edge-list file instead of --graph\n"
      "  --ranks=N            grid ranks; squarest grid chosen (default 16)\n"
      "  --rows=R --cols=C    explicit grid shape (overrides --ranks)\n"
      "  --scale-shift=K      shrink/grow dataset analogs by 2^K\n"
      "  --iterations=N       pr/lp iteration count (default 20)\n"
      "  --root=V             bfs root vertex (default 0)\n"
      "  --verify             check against the sequential oracle\n"
      "  --striped=BOOL       striped vertex assignment (default true)\n"
      "  --trace=FILE.csv     modeled cost-event trace\n"
      "  --trace-out=FILE     Chrome trace JSON of telemetry spans\n"
      "  --metrics-out=FILE   metrics snapshot (.csv -> CSV, else JSON)\n"
      "  --faults=PLAN        fault plan, e.g. crash@r2:s3 (docs/FAULTS.md)\n"
      "  --fault-seed=N       seed resolving r? fault targets (default 0)\n"
      "  --checkpoint-every=N superstep checkpoint interval (0 = off)\n"
      "  --comm-timeout=S     recv/barrier deadline in seconds (0 = off)\n"
      "  --calibration=FILE   calibration.json from hpcg_tune (implies\n"
      "                       --collective-policy=adaptive)\n"
      "  --collective-policy=fixed|adaptive\n"
      "                       collective algorithm selection (default fixed;\n"
      "                       adaptive without --calibration derives the\n"
      "                       reference calibration from the topology)\n"
      "  --transport=NAME     shm (simulated ranks-as-threads, default) or\n"
      "                       socket (one OS process per rank over Unix\n"
      "                       sockets, wall-clock timing; docs/TRANSPORT.md)\n"
      "  --procs=N            socket only: rank/process count (alias for\n"
      "                       --ranks)\n"
      "  --max-restarts=N     socket only: whole-gang restarts after a rank\n"
      "                       process dies (default 3)\n"
      "  --ckpt-dir=PATH      socket only: checkpoint directory (default: a\n"
      "                       fresh temp dir, removed afterwards)\n"
      "  --kill-rank=R --kill-after=N\n"
      "                       socket only, crash testing: rank R SIGKILLs\n"
      "                       itself before its (N+1)-th frame send on the\n"
      "                       first attempt\n") +
      hpcg::util::kKernelFlagsUsage +
      "  --help               show this text and exit\n");
  const std::string algo = options.get_string("algo", "bfs");
  const std::string dataset = options.get_string("graph", "rmat14");
  const std::string file = options.get_string("file", "");
  const int ranks = static_cast<int>(options.get_int("ranks", 16));
  const int rows = static_cast<int>(options.get_int("rows", 0));
  const int cols = static_cast<int>(options.get_int("cols", 0));
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const int iterations = static_cast<int>(options.get_int("iterations", 20));
  const Gid root = options.get_int("root", 0);
  const bool verify = options.get_bool("verify", false);
  const bool striped = options.get_bool("striped", true);
  const std::string trace_csv = options.get_string("trace", "");
  const std::string trace_out = options.get_string("trace-out", "");
  const std::string metrics_out = options.get_string("metrics-out", "");
  const std::string faults_text = options.get_string("faults", "");
  const auto fault_seed =
      static_cast<std::uint64_t>(options.get_int("fault-seed", 0));
  const std::int64_t checkpoint_every = options.get_int("checkpoint-every", 0);
  const double comm_timeout = options.get_double("comm-timeout", 0.0);
  const std::string calibration_path = options.get_string("calibration", "");
  const std::string policy_name = options.get_string(
      "collective-policy", calibration_path.empty() ? "fixed" : "adaptive");
  const std::string transport_name = options.get_string("transport", "shm");
  const int procs = static_cast<int>(options.get_int("procs", 0));
  const int max_restarts = static_cast<int>(options.get_int("max-restarts", 3));
  const std::string ckpt_dir_flag = options.get_string("ckpt-dir", "");
  const int kill_rank = static_cast<int>(options.get_int("kill-rank", -1));
  const std::int64_t kill_after = options.get_int("kill-after", 0);
  hpcg::comm::KernelOptions kernel;
  try {
    kernel = hpcg::util::parse_kernel_options(options);
  } catch (const hpcg::comm::KernelOptionsError& e) {
    return fail(e.what());
  }
  options.check_unknown();

  const bool socket = transport_name == "socket";
  if (!socket && transport_name != "shm") {
    return fail("unknown --transport '" + transport_name +
                "' (expected shm or socket)");
  }
  if (!socket && (procs > 0 || kill_rank >= 0 || !ckpt_dir_flag.empty())) {
    return fail("--procs/--kill-rank/--ckpt-dir require --transport=socket");
  }
  if (socket) {
    if (!faults_text.empty()) {
      return fail("--faults requires --transport=shm: fault injection is "
                  "modeled; on the socket backend kill a real process with "
                  "--kill-rank/--kill-after instead");
    }
    if (!trace_csv.empty() || !trace_out.empty() || !metrics_out.empty()) {
      return fail("--trace/--trace-out/--metrics-out are per-run aggregations "
                  "the multi-process backend does not collect; use "
                  "--transport=shm for modeled traces");
    }
  }

  // Input.
  hpcg::util::WallTimer load_timer;
  hpcg::graph::EdgeList graph;
  try {
    if (!file.empty()) {
      graph = hpcg::graph::read_text(file);
      hpcg::graph::remove_self_loops(graph);
      hpcg::graph::symmetrize(graph);
    } else {
      graph = hpcg::graph::load_dataset(dataset, shift);
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (algo == "mwm" && !graph.weighted()) {
    hpcg::graph::attach_symmetric_weights(graph, 1);
  }
  std::cout << "input: " << graph.n << " vertices, " << graph.m()
            << " directed edges (" << load_timer.elapsed() << " s to build)\n";

  // Grid. --procs is the socket-mode spelling of --ranks.
  const int want_ranks = (socket && procs > 0) ? procs : ranks;
  const auto grid = (rows > 0 && cols > 0)
                        ? hpcg::core::Grid(rows, cols)
                        : hpcg::core::Grid::squarest(want_ranks);
  if (socket && procs > 0 && grid.ranks() != procs) {
    return fail("--procs=" + std::to_string(procs) +
                " conflicts with --rows/--cols grid of " +
                std::to_string(grid.ranks()) + " ranks");
  }
  std::cout << "grid: " << grid.row_groups() << " x " << grid.col_groups()
            << " (" << grid.ranks() << " ranks, "
            << (striped ? "striped" : "contiguous") << " assignment)\n";
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid, striped);
  const auto balance = hpcg::core::partition_balance(parts);
  std::cout << "edge imbalance (max/mean): " << balance.edge_imbalance() << "\n";

  // Run.
  bool passed = true;
  hpcg::comm::CostParams cost_params;
  cost_params.trace = !trace_csv.empty();
  // Telemetry stays off (null recorder, zero hook cost) unless an output
  // was requested.
  std::unique_ptr<hpcg::telemetry::Recorder> recorder;
  if (!trace_out.empty() || !metrics_out.empty()) {
    recorder = std::make_unique<hpcg::telemetry::Recorder>(grid.ranks());
  }
  auto body = [&](hpcg::comm::Comm& comm, hpcg::fault::Checkpointer* ckpt) {
    hpcg::core::Dist2DGraph g(comm, parts);
    comm.reset_clocks();

    const auto striped_of = [&](Gid v) { return parts.relabel().to_new(v); };
    auto check = [&](bool ok) {
      if (!ok) passed = false;  // only rank 0 writes (below)
    };

    if (algo == "bfs") {
      auto result = hpcg::algos::bfs(g, root, {}, ckpt);
      auto levels = hpcg::algos::gather_row_state(
          g, std::span<const std::int64_t>(result.level));
      if (comm.rank() == 0) {
        std::int64_t reached = 0;
        for (const auto l : levels) {
          if (l != hpcg::algos::BfsResult::kUnvisited) ++reached;
        }
        std::cout << "bfs: " << reached << " reached, depth " << result.depth
                  << " (" << result.top_down_steps << " TD, "
                  << result.bottom_up_steps << " BU)\n";
        if (verify) {
          hpcg::graph::EdgeList striped_el = graph;
          parts.relabel().apply(striped_el);
          hpcg::graph::Csr csr(striped_el.n, striped_el.edges);
          const auto expect = hpcg::algos::ref::bfs_levels(csr, striped_of(root));
          for (Gid v = 0; v < graph.n; ++v) {
            const auto want = expect[static_cast<std::size_t>(v)];
            check(levels[static_cast<std::size_t>(v)] ==
                  (want < 0 ? hpcg::algos::BfsResult::kUnvisited : want));
          }
        }
      }
    } else if (algo == "pr") {
      auto pr = hpcg::algos::pagerank(g, iterations, 0.85, {}, ckpt);
      auto gathered = hpcg::algos::gather_row_state(g, std::span<const double>(pr));
      if (comm.rank() == 0) {
        double total = 0.0;
        for (const auto x : gathered) total += x;
        std::cout << "pagerank: " << iterations << " iterations, mass " << total
                  << "\n";
        if (verify) {
          hpcg::graph::EdgeList striped_el = graph;
          parts.relabel().apply(striped_el);
          hpcg::graph::Csr csr(striped_el.n, striped_el.edges);
          const auto expect = hpcg::algos::ref::pagerank(csr, iterations);
          for (Gid v = 0; v < graph.n; ++v) {
            check(std::abs(gathered[static_cast<std::size_t>(v)] -
                           expect[static_cast<std::size_t>(v)]) < 1e-9);
          }
        }
      }
    } else if (algo == "cc") {
      auto result = hpcg::algos::connected_components(
          g, hpcg::algos::CcOptions::all_push(), ckpt);
      auto labels = hpcg::algos::gather_row_state(g, std::span<const Gid>(result.label));
      if (comm.rank() == 0) {
        std::set<Gid> components(labels.begin(), labels.end());
        std::cout << "cc: " << components.size() << " components in "
                  << result.iterations << " iterations\n";
        if (verify) {
          hpcg::graph::EdgeList striped_el = graph;
          parts.relabel().apply(striped_el);
          const auto expect = hpcg::algos::ref::connected_components(striped_el);
          for (Gid v = 0; v < graph.n; ++v) {
            check(labels[static_cast<std::size_t>(v)] ==
                  expect[static_cast<std::size_t>(v)]);
          }
        }
      }
    } else if (algo == "mwm") {
      auto result = hpcg::algos::max_weight_matching(g);
      auto mate = hpcg::algos::gather_row_state(g, std::span<const Gid>(result.mate));
      if (comm.rank() == 0) {
        std::int64_t matched = 0;
        for (const auto m : mate) {
          if (m >= 0) ++matched;
        }
        std::cout << "mwm: " << matched / 2 << " pairs in " << result.rounds
                  << " rounds\n";
        if (verify) {
          for (std::size_t v = 0; v < mate.size(); ++v) {
            if (mate[v] >= 0) {
              check(mate[static_cast<std::size_t>(mate[v])] ==
                    static_cast<Gid>(v));
            }
          }
        }
      }
    } else if (algo == "lp") {
      auto result = hpcg::algos::label_propagation(g, iterations, {}, ckpt);
      auto labels = hpcg::algos::gather_row_state(
          g, std::span<const std::uint64_t>(result.label));
      if (comm.rank() == 0) {
        std::set<std::uint64_t> communities(labels.begin(), labels.end());
        std::cout << "lp: " << communities.size() << " communities after "
                  << iterations << " iterations (" << result.total_updates
                  << " updates)\n";
      }
    } else if (algo == "ccsv") {
      auto result = hpcg::algos::connected_components_sv(g);
      auto labels = hpcg::algos::gather_row_state(g, std::span<const Gid>(result.label));
      if (comm.rank() == 0) {
        std::set<Gid> components(labels.begin(), labels.end());
        std::cout << "ccsv: " << components.size() << " components in "
                  << result.rounds << " hook rounds (" << result.jump_rounds
                  << " jump rounds)\n";
        if (verify) {
          hpcg::graph::EdgeList striped_el = graph;
          parts.relabel().apply(striped_el);
          const auto expect = hpcg::algos::ref::connected_components(striped_el);
          for (Gid v = 0; v < graph.n; ++v) {
            check(labels[static_cast<std::size_t>(v)] ==
                  expect[static_cast<std::size_t>(v)]);
          }
        }
      }
    } else if (algo == "tc") {
      const auto result = hpcg::algos::triangle_count(g);
      if (comm.rank() == 0) {
        std::cout << "tc: " << result.triangles << " triangles ("
                  << result.wedges_checked << " wedges checked)\n";
        if (verify) check(result.triangles == hpcg::algos::ref::triangle_count(graph));
      }
    } else if (algo == "kcore") {
      auto result = hpcg::algos::kcore(g);
      auto core = hpcg::algos::gather_row_state(
          g, std::span<const std::int64_t>(result.core));
      if (comm.rank() == 0) {
        const auto max_core = *std::max_element(core.begin(), core.end());
        std::cout << "kcore: max coreness " << max_core << " in "
                  << result.iterations << " H-operator iterations\n";
        if (verify) {
          hpcg::graph::EdgeList striped_el = graph;
          parts.relabel().apply(striped_el);
          const auto expect = hpcg::algos::ref::kcore(striped_el);
          for (Gid v = 0; v < graph.n; ++v) {
            check(core[static_cast<std::size_t>(v)] ==
                  expect[static_cast<std::size_t>(v)]);
          }
        }
      }
    } else if (algo == "pj") {
      auto result = hpcg::algos::pointer_jump(g);
      auto roots = hpcg::algos::gather_row_state(g, std::span<const Gid>(result.root));
      if (comm.rank() == 0) {
        std::int64_t n_roots = 0;
        for (std::size_t v = 0; v < roots.size(); ++v) {
          if (roots[v] == static_cast<Gid>(v)) ++n_roots;
        }
        std::cout << "pj: " << n_roots << " roots in " << result.rounds
                  << " rounds\n";
      }
    } else if (comm.rank() == 0) {
      std::cout << "unknown --algo=" << algo << "\n";
      passed = false;
    }
  };

  const auto topo = hpcg::comm::Topology::aimos(grid.ranks());
  const hpcg::comm::CostModel cost_model(cost_params);

  // Collective selection policy: fixed (legacy formulas), or adaptive from
  // a calibration file / the topology-derived reference. Results are
  // bit-identical either way; only modeled time changes (docs/TUNING.md).
  hpcg::comm::CollectivePolicy policy;
  if (policy_name == "adaptive") {
    try {
      const auto cal = calibration_path.empty()
                           ? hpcg::tune::reference_calibration(topo, cost_params)
                           : hpcg::tune::Calibration::load(calibration_path);
      policy = cal.to_policy();
    } catch (const hpcg::tune::CalibrationError& e) {
      return fail(std::string(e.what()) +
                  "\nhint: produce one with 'hpcg_tune sweep' + "
                  "'hpcg_tune fit', or drop --calibration to use the "
                  "topology-derived reference");
    }
  } else if (policy_name != "fixed") {
    return fail("unknown --collective-policy '" + policy_name +
                "' (expected fixed or adaptive)");
  }

  if (socket) {
    // Multi-process backend: fork one OS process per rank over Unix-domain
    // sockets (docs/TRANSPORT.md). Results are identical to shm; timing is
    // wall-clock instead of modeled. Checkpoints go through a directory so
    // a restarted gang (new processes) can read the old commit.
    std::string ckpt_dir = ckpt_dir_flag;
    bool temp_ckpt_dir = false;
    const bool checkpointing = checkpoint_every > 0;
    if (checkpointing && ckpt_dir.empty()) {
      char tmpl[] = "/tmp/hpcg_ckpt_XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        return fail("cannot create a temporary --ckpt-dir");
      }
      ckpt_dir = tmpl;
      temp_ckpt_dir = true;
    }
    hpcg::comm::transport::GangOptions gopts;
    gopts.procs = grid.ranks();
    gopts.max_restarts = max_restarts;
    gopts.kill_rank = kill_rank;
    gopts.kill_after_sends = kill_after;
    std::cout << "transport: socket, " << gopts.procs << " procs\n";
    hpcg::comm::transport::GangResult gang;
    try {
      gang = hpcg::comm::transport::run_gang(
          gopts,
          [&](hpcg::comm::transport::SocketTransport& t, int) -> int {
            std::unique_ptr<hpcg::fault::FileCheckpointStore> store;
            hpcg::fault::Checkpointer ckpt;
            if (checkpointing) {
              store = std::make_unique<hpcg::fault::FileCheckpointStore>(
                  ckpt_dir, gopts.procs);
              ckpt = hpcg::fault::Checkpointer(store.get(), checkpoint_every);
            }
            hpcg::comm::RunOptions ropts;
            ropts.comm_timeout_s = comm_timeout;
            ropts.kernel = kernel;
            ropts.policy = policy;
            ropts.transport = &t;
            const auto wall_stats = hpcg::comm::Runtime::run(
                gopts.procs, topo, cost_model, ropts,
                [&](hpcg::comm::Comm& comm) {
                  body(comm, checkpointing ? &ckpt : nullptr);
                });
            if (t.rank() == 0) {
              // Counters here are rank 0's view: world collectives at full
              // group volume plus the subgroups rank 0 belongs to. Other
              // subgroups' traffic lands in their own processes' stats.
              std::cout << "wall: total " << wall_stats.makespan()
                        << " s, comp " << wall_stats.max_comp() << " s, comm "
                        << wall_stats.max_comm() << " s, " << wall_stats.bytes
                        << " bytes (rank 0 view), " << wall_stats.messages
                        << " messages\n";
              if (verify) {
                std::cout << "verification: "
                          << (passed ? "PASSED" : "FAILED") << "\n";
                if (!passed) return 2;
              }
            }
            return 0;
          });
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    if (temp_ckpt_dir) {
      std::error_code ec;
      std::filesystem::remove_all(ckpt_dir, ec);
    }
    if (checkpointing || gang.restarts > 0) {
      std::cout << "gang: " << gang.restarts << " restart(s)\n";
    }
    if (gang.exit_code != 0) {
      return fail("socket gang failed (exit " +
                  std::to_string(gang.exit_code) + ")");
    }
    return 0;
  }

  hpcg::comm::RunStats stats;
  try {
    std::unique_ptr<hpcg::fault::FaultInjector> injector;
    if (!faults_text.empty()) {
      injector = std::make_unique<hpcg::fault::FaultInjector>(
          hpcg::fault::FaultPlan::parse(faults_text, fault_seed), grid.ranks());
      std::cout << "faults: " << injector->resolved_specs().size()
                << " planned (seed " << fault_seed << ")\n";
    }
    if (injector || checkpoint_every > 0) {
      // Fault-tolerant path: superstep checkpoints plus restart-on-failure.
      hpcg::fault::RecoveryOptions ropts;
      ropts.recorder = recorder.get();
      ropts.injector = injector.get();
      ropts.checkpoint_every = checkpoint_every;
      ropts.comm_timeout_s = comm_timeout;
      ropts.kernel = kernel;
      ropts.policy = policy;
      const auto recovery = hpcg::fault::Runtime::run_with_recovery(
          grid.ranks(), topo, cost_model, ropts,
          [&](hpcg::comm::Comm& comm, hpcg::fault::Checkpointer& ckpt) {
            body(comm, &ckpt);
          });
      stats = recovery.stats;
      std::cout << "recovery: " << recovery.restarts << " restart(s), "
                << recovery.checkpoints_committed << " checkpoint(s) committed ("
                << recovery.checkpoint_bytes << " bytes)";
      for (const auto epoch : recovery.resume_epochs) {
        std::cout << ", resumed from epoch " << epoch;
      }
      std::cout << "\n";
      if (injector) {
        for (const auto& event : injector->events()) {
          std::cout << "  fault: " << hpcg::fault::to_string(event.kind)
                    << " on rank " << event.rank << " at superstep "
                    << event.superstep << " (vtime " << event.vtime << " s)\n";
        }
      }
    } else {
      hpcg::comm::RunOptions ropts;
      ropts.recorder = recorder.get();
      ropts.comm_timeout_s = comm_timeout;
      ropts.kernel = kernel;
      ropts.policy = policy;
      stats = hpcg::comm::Runtime::run(
          grid.ranks(), topo, cost_model, ropts,
          [&](hpcg::comm::Comm& comm) { body(comm, nullptr); });
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  std::cout << "modeled: total " << stats.makespan() << " s, comp "
            << stats.max_comp() << " s, comm " << stats.max_comm() << " s, "
            << stats.bytes << " bytes, " << stats.messages << " messages\n";
  if (!trace_csv.empty()) {
    std::ofstream out(trace_csv);
    out << "end_time_s,cost_s,op,group_size,bytes,level\n";
    for (const auto& event : stats.trace) {
      out << event.end_time << "," << event.cost << "," << event.op_name()
          << "," << event.group_size << "," << event.bytes << ","
          << hpcg::comm::to_string(event.link_class) << "\n";
    }
    std::cout << "wrote " << stats.trace.size() << " trace events to "
              << trace_csv << "\n";
  }
  if (recorder) {
    const auto spans = recorder->spans();
    const auto report = hpcg::telemetry::analyze(spans, recorder->nranks());
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) return fail("cannot open --trace-out file " + trace_out);
      hpcg::telemetry::write_chrome_trace(out, spans, recorder->nranks());
      std::cout << "wrote " << spans.size() << " spans ("
                << recorder->nranks()
                << " rank tracks) to " << trace_out
                << " — load in chrome://tracing or ui.perfetto.dev\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) return fail("cannot open --metrics-out file " + metrics_out);
      const auto snap = recorder->metrics().snapshot();
      if (metrics_out.size() >= 4 &&
          metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0) {
        hpcg::telemetry::write_metrics_csv(out, snap, report);
      } else {
        hpcg::telemetry::write_metrics_json(out, snap, report);
      }
      std::cout << "wrote metrics to " << metrics_out << "\n";
    }
    std::cout << "telemetry: " << report.supersteps.size()
              << " supersteps, critical path " << report.critical_path_s
              << " s, worst imbalance " << report.worst_imbalance
              << ", straggler rank " << report.straggler_rank << "\n";
  }
  if (verify) {
    std::cout << "verification: " << (passed ? "PASSED" : "FAILED") << "\n";
    if (!passed) return fail("verification failed");
  }
  return 0;
}

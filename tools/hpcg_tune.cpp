// Communication autotuner CLI: microbench sweep -> least-squares fit ->
// calibration.json, plus inspection (print) and comparison (diff).
//
//   hpcg_tune sweep --ranks=12 --out=sweep.csv
//   hpcg_tune fit --sweep=sweep.csv --out=calibration.json
//   hpcg_tune print --calibration=calibration.json
//   hpcg_tune diff --calibration=calibration.json [--other=b.json]
//
// `diff` without --other compares against the reference calibration derived
// from the configured topology (what a perfect sweep must reproduce) and
// exits 3 when any fitted constant deviates beyond --tolerance — the CI
// tune-smoke job's round-trip check. See docs/TUNING.md.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/topology.hpp"
#include "tune/calibration.hpp"
#include "tune/fit.hpp"
#include "tune/sweep.hpp"
#include "util/options.hpp"

namespace {

constexpr const char* kUsage = R"(usage: hpcg_tune <command> [options]

commands:
  sweep   run the deterministic communication microbench, write a CSV
  fit     least-squares fit a sweep CSV into a calibration.json
  print   show a calibration's fitted levels and crossover table
  diff    compare a calibration against the reference (or another file)

sweep options:
  --ranks=N            simulated ranks (default 12)
  --topo=NAME          aimos | zepy | flat (default aimos)
  --patterns=LIST      comma list of p2p,allreduce,broadcast,allgatherv,
                       alltoallv (default: all)
  --min-bytes=N        smallest message (default 8)
  --max-bytes=N        largest message (default 1048576)
  --size-factor=N      geometric ladder factor (default 4)
  --reps=N             repetitions per sample (default 3)
  --software-alpha=S   substrate per-op software overhead (default 5e-7)
  --bw-derate=X        effective-bandwidth derate, must be > 0 (default 1)
  --out=FILE           output CSV (default sweep.csv)
  --transport=NAME     shm (modeled virtual clocks, default) or socket
                       (real framed sockets, wall-clock durations -- the
                       result calibrates this machine, not the topology;
                       diff it against a modeled sweep, docs/TUNING.md)

fit options:
  --sweep=FILE         input sweep CSV (default sweep.csv)
  --ranks/--topo       provenance stamped into the calibration (as sweep)
  --out=FILE           output calibration (default calibration.json)

print options:
  --calibration=FILE   calibration to show (default calibration.json)

diff options:
  --calibration=FILE   calibration to check (default calibration.json)
  --other=FILE         compare against this file instead of the reference
  --ranks/--topo/--software-alpha/--bw-derate
                       reference model parameters (as sweep)
  --tolerance=X        max relative deviation before exit 3 (default 0.01)
)";

hpcg::comm::Topology topo_from_name(const std::string& name, int nranks) {
  if (name == "aimos") return hpcg::comm::Topology::aimos(nranks);
  if (name == "zepy") return hpcg::comm::Topology::zepy(nranks);
  if (name == "flat") return hpcg::comm::Topology::flat(nranks);
  std::cerr << "unknown --topo '" << name << "' (aimos | zepy | flat)\n";
  std::exit(2);
}

std::vector<hpcg::tune::Pattern> patterns_from_list(const std::string& list) {
  std::vector<hpcg::tune::Pattern> patterns;
  if (list.empty() || list == "all") return patterns;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    patterns.push_back(hpcg::tune::pattern_from_string(item));
  }
  return patterns;
}

int cmd_sweep(hpcg::util::Options& options) {
  const int ranks = static_cast<int>(options.get_int("ranks", 12));
  const std::string topo_name = options.get_string("topo", "aimos");
  const std::string patterns = options.get_string("patterns", "all");
  const std::size_t min_bytes =
      static_cast<std::size_t>(options.get_int("min-bytes", 8));
  const std::size_t max_bytes =
      static_cast<std::size_t>(options.get_int("max-bytes", 1 << 20));
  const std::size_t factor =
      static_cast<std::size_t>(options.get_int("size-factor", 4));
  const int reps = static_cast<int>(options.get_int("reps", 3));
  const double software_alpha = options.get_double("software-alpha", 0.5e-6);
  const double bw_derate = options.get_double("bw-derate", 1.0);
  const std::string out_path = options.get_string("out", "sweep.csv");
  const std::string transport = options.get_string("transport", "shm");
  options.check_unknown();
  if (transport != "shm" && transport != "socket") {
    std::cerr << "unknown --transport '" << transport
              << "' (expected shm or socket)\n";
    return 2;
  }

  hpcg::tune::SweepOptions sopts;
  sopts.topo = topo_from_name(topo_name, ranks);
  sopts.cost.software_alpha_s = software_alpha;
  sopts.cost.bw_derate = bw_derate;
  sopts.patterns = patterns_from_list(patterns);
  sopts.sizes = hpcg::tune::geometric_sizes(min_bytes, max_bytes, factor);
  sopts.reps = reps;
  sopts.socket_transport = transport == "socket";

  const auto sweep = hpcg::tune::run_sweep(sopts);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 2;
  }
  hpcg::tune::write_sweep_csv(out, sweep);
  std::cout << "swept " << sweep.size() << " samples on "
            << sopts.topo.describe()
            << (sopts.socket_transport ? " (socket transport, wall-clock)"
                                       : "")
            << " -> " << out_path << "\n";
  return 0;
}

int cmd_fit(hpcg::util::Options& options) {
  const std::string sweep_path = options.get_string("sweep", "sweep.csv");
  const int ranks = static_cast<int>(options.get_int("ranks", 12));
  const std::string topo_name = options.get_string("topo", "aimos");
  const std::string out_path = options.get_string("out", "calibration.json");
  options.check_unknown();

  std::ifstream in(sweep_path);
  if (!in) {
    std::cerr << "cannot open sweep CSV: " << sweep_path << "\n";
    return 2;
  }
  const auto sweep = hpcg::tune::read_sweep_csv(in);
  const auto fit = hpcg::tune::fit_sweep(sweep);
  const auto cal = hpcg::tune::make_calibration(
      topo_from_name(topo_name, ranks), fit);
  cal.save(out_path);
  int fitted = 0;
  for (const auto& f : cal.level) fitted += f.valid ? 1 : 0;
  std::cout << "fitted " << fitted << " levels from " << sweep.size()
            << " samples -> " << out_path << "\n";
  return 0;
}

void print_calibration(const hpcg::tune::Calibration& cal) {
  std::printf("calibration v%d: %s (%d ranks)\n", cal.version,
              cal.topology.c_str(), cal.nranks);
  std::printf("%-12s %12s %14s %14s %8s %12s\n", "level", "alpha_s",
              "beta_bytes_s", "sw_alpha_s", "samples", "max_rel_err");
  for (int i = 0; i < hpcg::comm::kNumLinkClasses; ++i) {
    const auto& f = cal.level[static_cast<std::size_t>(i)];
    if (!f.valid) continue;
    std::printf("%-12s %12.4g %14.5g %14.4g %8d %12.3g\n",
                hpcg::comm::to_string(static_cast<hpcg::comm::LinkClass>(i)),
                f.alpha_s, f.beta_bytes_s, f.software_alpha_s, f.samples,
                f.max_rel_error);
  }
  if (cal.crossovers.empty()) {
    std::printf("no crossovers (one algorithm dominates every size)\n");
    return;
  }
  std::printf("%-12s %-12s %6s %10s  %s\n", "op", "level", "group", "bytes",
              "switch");
  for (const auto& c : cal.crossovers) {
    std::printf("%-12s %-12s %6d %10zu  %s -> %s\n",
                hpcg::comm::to_string(c.op), hpcg::comm::to_string(c.level),
                c.group_size, c.bytes, hpcg::comm::to_string(c.below),
                hpcg::comm::to_string(c.above));
  }
}

int cmd_print(hpcg::util::Options& options) {
  const std::string path = options.get_string("calibration", "calibration.json");
  options.check_unknown();
  print_calibration(hpcg::tune::Calibration::load(path));
  return 0;
}

int cmd_diff(hpcg::util::Options& options) {
  const std::string path = options.get_string("calibration", "calibration.json");
  const std::string other_path = options.get_string("other", "");
  const int ranks = static_cast<int>(options.get_int("ranks", 12));
  const std::string topo_name = options.get_string("topo", "aimos");
  const double software_alpha = options.get_double("software-alpha", 0.5e-6);
  const double bw_derate = options.get_double("bw-derate", 1.0);
  const double tolerance = options.get_double("tolerance", 0.01);
  options.check_unknown();

  const auto cal = hpcg::tune::Calibration::load(path);
  hpcg::tune::Calibration ref;
  if (!other_path.empty()) {
    ref = hpcg::tune::Calibration::load(other_path);
  } else {
    hpcg::comm::CostParams cost;
    cost.software_alpha_s = software_alpha;
    cost.bw_derate = bw_derate;
    ref = hpcg::tune::reference_calibration(topo_from_name(topo_name, ranks),
                                            cost);
  }
  const std::string ref_name = other_path.empty() ? "reference" : other_path;
  std::printf("%-12s %-16s %14s %14s %10s\n", "level", "constant", path.c_str(),
              ref_name.c_str(), "rel_delta");
  double worst = 0.0;
  auto rel = [](double a, double b) {
    const double denom = std::max({std::abs(a), std::abs(b), 1e-300});
    return std::abs(a - b) / denom;
  };
  for (int i = 0; i < hpcg::comm::kNumLinkClasses; ++i) {
    const auto& a = cal.level[static_cast<std::size_t>(i)];
    const auto& b = ref.level[static_cast<std::size_t>(i)];
    if (!a.valid && !b.valid) continue;
    const char* name =
        hpcg::comm::to_string(static_cast<hpcg::comm::LinkClass>(i));
    if (a.valid != b.valid) {
      std::printf("%-12s fitted only in %s\n", name,
                  a.valid ? path.c_str() : ref_name.c_str());
      // Only penalize a level the *checked* file is missing: the reference
      // fits every class, including ones this topology never exercises.
      if (!a.valid) worst = 1.0;
      continue;
    }
    const struct { const char* label; double x, y; } rows[] = {
        {"alpha_s", a.alpha_s, b.alpha_s},
        {"beta_bytes_s", a.beta_bytes_s, b.beta_bytes_s},
        {"software_alpha_s", a.software_alpha_s, b.software_alpha_s},
    };
    for (const auto& r : rows) {
      const double d = rel(r.x, r.y);
      worst = std::max(worst, d);
      std::printf("%-12s %-16s %14.6g %14.6g %9.3g%%\n", name, r.label, r.x,
                  r.y, 100.0 * d);
    }
  }
  std::printf("worst relative deviation: %.3g%% (tolerance %.3g%%)\n",
              100.0 * worst, 100.0 * tolerance);
  return worst > tolerance ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::cout << kUsage;
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  // The subcommand is consumed here; Options sees only the flags after it.
  hpcg::util::Options options(argc - 1, argv + 1);
  options.usage(kUsage);
  try {
    if (command == "sweep") return cmd_sweep(options);
    if (command == "fit") return cmd_fit(options);
    if (command == "print") return cmd_print(options);
    if (command == "diff") return cmd_diff(options);
  } catch (const hpcg::tune::CalibrationError& e) {
    std::cerr << "calibration error: " << e.what() << "\n\n" << kUsage;
    return 2;
  } catch (const hpcg::tune::FitError& e) {
    std::cerr << "fit error: " << e.what() << "\n";
    return 2;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n\n" << kUsage;
    return 2;
  }
  std::cerr << "unknown command '" << command << "'\n\n" << kUsage;
  return 2;
}

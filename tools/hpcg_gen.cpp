// Dataset generator CLI: emit any generator or Table-4 analog as a text or
// binary edge list, with structure statistics.
//
//   hpcg_gen --graph=wdc-mini --out=wdc.bin
//   hpcg_gen --rmat-scale=18 --edge-factor=16 --out=rmat18.txt --format=text
//   hpcg_gen --er-n=100000 --er-m=1600000 --weighted --out=er.bin
#include <iostream>

#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: hpcg_gen [options]\n"
      "Generate a dataset analog or synthetic graph as a text/binary edge list.\n"
      "\n"
      "  --graph=NAME      dataset analog (Table-4 names, e.g. wdc-mini)\n"
      "  --rmat-scale=N    R-MAT generator with 2^N vertices\n"
      "  --edge-factor=F   R-MAT edges per vertex (default 16)\n"
      "  --er-n=N --er-m=M Erdos-Renyi with N vertices, M edges\n"
      "  --scale-shift=K   shrink/grow dataset analogs by 2^K\n"
      "  --seed=N          generator seed (default 1)\n"
      "  --weighted        attach symmetric edge weights\n"
      "  --out=PATH        output file (omit to only print stats)\n"
      "  --format=FMT      binary|text (default binary)\n"
      "  --stats=BOOL      print degree/component stats (default true)\n"
      "  --help            show this text and exit\n"
      "One of --graph, --rmat-scale, or --er-n/--er-m is required.\n");
  const std::string dataset = options.get_string("graph", "");
  const int rmat_scale = static_cast<int>(options.get_int("rmat-scale", 0));
  const int edge_factor = static_cast<int>(options.get_int("edge-factor", 16));
  const std::int64_t er_n = options.get_int("er-n", 0);
  const std::int64_t er_m = options.get_int("er-m", 0);
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const std::uint64_t seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const bool weighted = options.get_bool("weighted", false);
  const std::string out = options.get_string("out", "");
  const std::string format = options.get_string("format", "binary");
  const bool stats = options.get_bool("stats", true);
  options.check_unknown();

  hpcg::util::WallTimer timer;
  hpcg::graph::EdgeList graph;
  if (!dataset.empty()) {
    graph = hpcg::graph::load_dataset(dataset, shift);
  } else if (rmat_scale > 0) {
    hpcg::graph::RmatParams params;
    params.scale = rmat_scale;
    params.edge_factor = edge_factor;
    params.seed = seed;
    graph = hpcg::graph::generate_rmat(params);
    hpcg::graph::remove_self_loops(graph);
    hpcg::graph::symmetrize(graph);
  } else if (er_n > 0 && er_m > 0) {
    graph = hpcg::graph::generate_erdos_renyi(er_n, er_m, seed);
    hpcg::graph::remove_self_loops(graph);
    hpcg::graph::symmetrize(graph);
  } else {
    std::cerr << "specify --graph=NAME, --rmat-scale=N, or --er-n/--er-m\n";
    return 2;
  }
  if (weighted && !graph.weighted()) {
    hpcg::graph::attach_symmetric_weights(graph, seed + 1);
  }
  std::cout << "generated " << graph.n << " vertices, " << graph.m()
            << " directed edges in " << timer.elapsed() << " s\n";

  if (stats) {
    const auto deg = hpcg::graph::degree_stats(graph);
    std::cout << "degrees: max " << deg.max_degree << ", mean " << deg.mean_degree
              << ", p99 " << deg.p99_degree << ", skew " << deg.skew
              << ", isolated " << deg.isolated << "\n";
    std::cout << "components: " << hpcg::graph::count_components(graph)
              << ", approx diameter >= " << hpcg::graph::approx_diameter(graph)
              << "\n";
  }
  if (!out.empty()) {
    if (format == "text") {
      hpcg::graph::write_text(graph, out);
    } else {
      hpcg::graph::write_binary(graph, out);
    }
    std::cout << "wrote " << out << " (" << format << ")\n";
  }
  return 0;
}

// Serving-layer driver: loads a graph into a resident Session and fires
// requests at the Service, either from a deterministic request script or
// from the seeded closed-loop load generator. Prints throughput plus the
// p50/p95/p99 latency split from the service's histograms, and can dump
// the metrics snapshot and the per-request span trace.
//
// With --supervised (implied by --faults=) the session/service pair runs
// under a serve::Supervisor: seeded faults that kill the resident rank
// world trigger snapshot-restore + committed-log-replay recovery instead
// of poisoning the run (docs/RECOVERY.md). The summary then reports the
// restart count, the typed per-error failure tally, and the recovery
// counters, and --final-check verifies the served graph against a
// sequential reference on the supervisor's committed mirror.
//
//   hpcg_serve --graph=rmat14 --ranks=16 --clients=4 --requests=16
//   hpcg_serve --graph=rmat12 --ranks=9 --script=requests.txt
//   hpcg_serve --graph=rmat12 --faults=crash@r2:s40 --mutate-rate=20
//              --final-check=true
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>

#include "algos/reference.hpp"
#include "fault/injector.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/supervisor.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/report.hpp"
#include "tune/calibration.hpp"
#include "util/kernel_flags.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

int fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

double quantile_us(const hpcg::telemetry::MetricsRegistry::Snapshot& snap,
                   const std::string& name, double q) {
  const auto it = snap.histograms.find(name);
  if (it == snap.histograms.end()) return 0.0;
  return hpcg::telemetry::MetricsRegistry::histogram_quantile(it->second, q);
}

std::uint64_t counter_of(const hpcg::telemetry::MetricsRegistry::Snapshot& snap,
                         const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Sequential CC component count, the --final-check reference.
std::int64_t ref_component_count(const hpcg::graph::EdgeList& el) {
  const auto label = hpcg::algos::ref::connected_components(el);
  const std::set<hpcg::graph::Gid> distinct(label.begin(), label.end());
  return static_cast<std::int64_t>(distinct.size());
}

}  // namespace

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: hpcg_serve [options]\n"
      "Load a graph into a resident session and serve queries against it.\n"
      "\n"
      "Graph and session:\n"
      "  --graph=NAME          dataset analog (default rmat14)\n"
      "  --file=PATH           edge-list file instead of --graph\n"
      "  --ranks=N             grid ranks (default 16)\n"
      "  --rows=R --cols=C     explicit grid shape\n"
      "  --scale-shift=K       shrink/grow dataset analogs by 2^K\n"
      "  --striped=BOOL        striped vertex assignment (default true)\n"
      "  --threads=N           worker threads per rank (default 1)\n"
      "  --chunk-grain=N       edges per worker-pool chunk (default 16384)\n"
      "  --async=on|off        compute-comm overlap (default off)\n"
      "  --async-chunk=N       pipeline segments for sparse exchanges\n"
      "  --comm-timeout=S      recv/barrier deadline in seconds (0 = off)\n"
      "  --calibration=FILE    calibration.json from hpcg_tune (implies\n"
      "                        --collective-policy=adaptive)\n"
      "  --collective-policy=fixed|adaptive\n"
      "                        collective algorithm selection (default fixed;\n"
      "                        adaptive without --calibration uses the\n"
      "                        topology-derived reference)\n"
      "Faults and supervision (docs/RECOVERY.md):\n"
      "  --faults=PLAN         seeded fault plan, e.g. crash@r2:s40\n"
      "                        (docs/FAULTS.md grammar); implies --supervised\n"
      "  --fault-seed=N        plan seed for random targets (default 1)\n"
      "  --supervised=BOOL     run under serve::Supervisor (default: only\n"
      "                        when --faults is given)\n"
      "  --max-restarts=N      restart budget per window (default 3)\n"
      "  --restart-window=S    sliding budget window seconds (default 60)\n"
      "  --snapshot-every=N    serve-side snapshot cadence in commits\n"
      "                        (default 4; 0 = always replay from base)\n"
      "  --degrade-watermark=N shed non-cacheable load above this queue\n"
      "                        depth (default 0 = off)\n"
      "  --deadline=S          per-request completion budget (default 0)\n"
      "  --final-check=BOOL    verify served CC against a sequential\n"
      "                        reference on the committed graph (default\n"
      "                        false)\n"
      "Service policy:\n"
      "  --queue-capacity=N    admission queue bound (default 64)\n"
      "  --max-inflight=N      per-client in-flight quota (default 8)\n"
      "  --max-batch=N         BFS coalescing bound, 1..64 (default 64)\n"
      "  --cache-capacity=N    LRU result-cache entries (default 128)\n"
      "Workload (pick one):\n"
      "  --script=PATH         replay a request script (manual dispatch);\n"
      "                        commands: client NAME | bfs ROOT |\n"
      "                        msbfs R1,R2,.. | pr ITERS [D] [warm] | cc |\n"
      "                        mutate COUNT [DELPCT] [SEED] | pump | drain\n"
      "  --clients=N           closed-loop load generator threads (default 4)\n"
      "  --requests=N          requests per client (default 16)\n"
      "  --seed=N              load-generator seed (default 1)\n"
      "  --mutate-rate=N       weight of mutation batches in the load mix\n"
      "                        (default 0 = query-only; edge picks are\n"
      "                        seeded per client+request, reproducible)\n"
      "  --mutate-batch=N      edge ops per mutation batch (default 8)\n"
      "  --mutate-delete-pct=N delete share of each batch (default 30)\n"
      "Output:\n"
      "  --metrics-out=FILE    metrics snapshot (.csv -> CSV, else JSON)\n"
      "  --trace-out=FILE      Chrome trace JSON incl. the request track\n"
      "  --help                show this text and exit\n");
  const std::string dataset = options.get_string("graph", "rmat14");
  const std::string file = options.get_string("file", "");
  const int ranks = static_cast<int>(options.get_int("ranks", 16));
  const int rows = static_cast<int>(options.get_int("rows", 0));
  const int cols = static_cast<int>(options.get_int("cols", 0));
  const int shift = static_cast<int>(options.get_int("scale-shift", 0));
  const bool striped = options.get_bool("striped", true);
  hpcg::comm::KernelOptions kernel;
  try {
    kernel = hpcg::util::parse_kernel_options(options);
  } catch (const hpcg::comm::KernelOptionsError& e) {
    return fail(e.what());
  }
  const double comm_timeout = options.get_double("comm-timeout", 0.0);
  const std::string faults_text = options.get_string("faults", "");
  const auto fault_seed =
      static_cast<std::uint64_t>(options.get_int("fault-seed", 1));
  const bool supervised = options.get_bool("supervised", !faults_text.empty());
  const int max_restarts = static_cast<int>(options.get_int("max-restarts", 3));
  const double restart_window = options.get_double("restart-window", 60.0);
  const int snapshot_every =
      static_cast<int>(options.get_int("snapshot-every", 4));
  const auto degrade_watermark =
      static_cast<std::size_t>(options.get_int("degrade-watermark", 0));
  const double deadline = options.get_double("deadline", 0.0);
  const bool final_check = options.get_bool("final-check", false);
  const auto queue_capacity =
      static_cast<std::size_t>(options.get_int("queue-capacity", 64));
  const int max_inflight = static_cast<int>(options.get_int("max-inflight", 8));
  const int max_batch = static_cast<int>(options.get_int("max-batch", 64));
  const auto cache_capacity =
      static_cast<std::size_t>(options.get_int("cache-capacity", 128));
  const std::string script_path = options.get_string("script", "");
  const int clients = static_cast<int>(options.get_int("clients", 4));
  const int requests = static_cast<int>(options.get_int("requests", 16));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const int mutate_rate = static_cast<int>(options.get_int("mutate-rate", 0));
  const int mutate_batch = static_cast<int>(options.get_int("mutate-batch", 8));
  const int mutate_delete_pct =
      static_cast<int>(options.get_int("mutate-delete-pct", 30));
  const std::string metrics_out = options.get_string("metrics-out", "");
  const std::string trace_out = options.get_string("trace-out", "");
  const std::string calibration_path = options.get_string("calibration", "");
  const std::string policy_name = options.get_string(
      "collective-policy", calibration_path.empty() ? "fixed" : "adaptive");
  options.check_unknown();
  if (!faults_text.empty() && !supervised) {
    return fail("--faults requires supervision (drop --supervised=false)");
  }
  if (final_check && !supervised && mutate_rate > 0) {
    return fail(
        "--final-check with mutations needs --supervised=true (the "
        "committed mirror lives in the supervisor)");
  }

  hpcg::util::WallTimer load_timer;
  hpcg::graph::EdgeList graph;
  try {
    if (!file.empty()) {
      graph = hpcg::graph::read_text(file);
      hpcg::graph::remove_self_loops(graph);
      hpcg::graph::symmetrize(graph);
    } else {
      graph = hpcg::graph::load_dataset(dataset, shift);
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  const auto grid = (rows > 0 && cols > 0) ? hpcg::core::Grid(rows, cols)
                                           : hpcg::core::Grid::squarest(ranks);
  std::cout << "input: " << graph.n << " vertices, " << graph.m()
            << " directed edges; grid " << grid.row_groups() << " x "
            << grid.col_groups() << "\n";

  // One extra recorder track beyond the ranks carries per-request spans.
  hpcg::telemetry::Recorder recorder(grid.ranks() + 1);

  try {
    std::unique_ptr<hpcg::fault::FaultInjector> injector;
    if (!faults_text.empty()) {
      injector = std::make_unique<hpcg::fault::FaultInjector>(
          hpcg::fault::FaultPlan::parse(faults_text, fault_seed), grid.ranks());
      std::cout << "faults: " << injector->resolved_specs().size()
                << " planned (seed " << fault_seed << ")\n";
    }

    hpcg::serve::SessionOptions sopts;
    sopts.striped = striped;
    sopts.recorder = &recorder;
    sopts.faults = injector.get();
    sopts.comm_timeout_s = comm_timeout;
    sopts.kernel = kernel;
    if (policy_name == "adaptive") {
      // Sessions run under the default cost model; an adaptive policy only
      // redirects its modeled charges (results stay bit-identical).
      try {
        const auto cal =
            calibration_path.empty()
                ? hpcg::tune::reference_calibration(
                      hpcg::comm::Topology::aimos(grid.ranks()),
                      hpcg::comm::CostParams{})
                : hpcg::tune::Calibration::load(calibration_path);
        sopts.policy = cal.to_policy();
      } catch (const hpcg::tune::CalibrationError& e) {
        return fail(std::string(e.what()) +
                    "\nhint: produce one with 'hpcg_tune sweep' + "
                    "'hpcg_tune fit', or drop --calibration to use the "
                    "topology-derived reference");
      }
    } else if (policy_name != "fixed") {
      return fail("unknown --collective-policy '" + policy_name +
                  "' (expected fixed or adaptive)");
    }

    hpcg::serve::ServiceOptions vopts;
    vopts.queue_capacity = queue_capacity;
    vopts.max_inflight_per_client = max_inflight;
    vopts.max_batch = max_batch;
    vopts.cache_capacity = cache_capacity;
    vopts.recorder = &recorder;
    vopts.auto_dispatch = script_path.empty();
    vopts.kernel = kernel;

    // Exactly one backend is live; `frontend` is the request surface
    // either way.
    std::unique_ptr<hpcg::serve::Session> session;
    std::unique_ptr<hpcg::serve::Service> service;
    std::unique_ptr<hpcg::serve::Supervisor> supervisor;
    hpcg::serve::Frontend* frontend = nullptr;
    if (supervised) {
      hpcg::serve::SupervisorOptions uopts;
      uopts.session = sopts;
      uopts.service = vopts;
      uopts.max_restarts = max_restarts;
      uopts.restart_window_s = restart_window;
      uopts.snapshot_every = snapshot_every;
      uopts.degrade_queue_watermark = degrade_watermark;
      uopts.auto_recover = script_path.empty();
      supervisor =
          std::make_unique<hpcg::serve::Supervisor>(graph, grid, uopts);
      frontend = supervisor.get();
      std::cout << "session: resident on " << grid.ranks()
                << " ranks, supervised (" << load_timer.elapsed()
                << " s to load + distribute)\n";
    } else {
      session = std::make_unique<hpcg::serve::Session>(graph, grid, sopts);
      service = std::make_unique<hpcg::serve::Service>(*session, vopts);
      frontend = service.get();
      std::cout << "session: resident on " << session->nranks() << " ranks ("
                << load_timer.elapsed() << " s to load + distribute)\n";
    }

    hpcg::util::WallTimer serve_timer;
    if (!script_path.empty()) {
      std::ifstream script(script_path);
      if (!script) return fail("cannot open --script file " + script_path);
      const auto result = hpcg::serve::run_script(*frontend, script);
      std::cout << result.log;
      std::cout << "script: " << result.submitted << " submitted, "
                << result.admitted << " admitted, " << result.rejected
                << " rejected, " << result.completed << " completed, "
                << result.failed << " failed\n";
    } else {
      hpcg::serve::LoadGenOptions lopts;
      lopts.clients = clients;
      lopts.requests_per_client = requests;
      lopts.seed = seed;
      lopts.mutate_weight = mutate_rate;
      lopts.mutate_batch = mutate_batch;
      lopts.mutate_delete_pct = mutate_delete_pct;
      lopts.deadline_s = deadline;
      const auto stats = hpcg::serve::run_load(*frontend, frontend->n(), lopts);
      std::cout << "load: " << stats.completed << " completed of "
                << stats.submitted << " submitted (" << stats.rejected
                << " overload rejections, " << stats.failed << " failed, "
                << stats.cache_hits << " cache hits) in " << stats.wall_s
                << " s -> " << stats.rps << " req/s\n";
      if (stats.failed > 0 || stats.rejected_degraded > 0 ||
          stats.retried_completed > 0) {
        std::cout << "errors: session_closed=" << stats.failed_session_closed
                  << " deadline=" << stats.failed_deadline
                  << " unavailable=" << stats.failed_unavailable
                  << " other=" << stats.failed_other
                  << "; degraded_sheds=" << stats.rejected_degraded
                  << " retried_completed=" << stats.retried_completed << "\n";
      }
    }
    frontend->drain();

    auto& registry = supervisor ? supervisor->metrics() : service->metrics();
    const auto snap = registry.snapshot();
    std::cout << "latency (us): total p50 "
              << quantile_us(snap, "serve.latency.total_us", 0.50) << ", p95 "
              << quantile_us(snap, "serve.latency.total_us", 0.95) << ", p99 "
              << quantile_us(snap, "serve.latency.total_us", 0.99)
              << "; queue p99 "
              << quantile_us(snap, "serve.latency.queue_us", 0.99)
              << "; exec p99 "
              << quantile_us(snap, "serve.latency.exec_us", 0.99) << "\n";
    if (service) {
      std::cout << "cache: " << service->cache().hits() << " hits, "
                << service->cache().misses() << " misses, "
                << service->cache().evictions() << " evictions ("
                << service->cache().size() << " resident)\n";
    }
    const auto epoch = supervisor ? supervisor->epoch() : service->epoch();
    if (epoch > 0 || counter_of(snap, "stream.batches.empty") > 0) {
      std::cout << "stream: epoch " << epoch << ", "
                << counter_of(snap, "stream.batches.committed")
                << " batches committed, "
                << counter_of(snap, "stream.edges.inserted") << " inserted, "
                << counter_of(snap, "stream.edges.deleted") << " deleted ("
                << counter_of(snap, "stream.deletes.noop")
                << " no-op deletes), "
                << counter_of(snap, "stream.cache.invalidated")
                << " cache entries invalidated\n";
    }
    if (supervisor) {
      const auto state = supervisor->state();
      const char* state_text =
          state == hpcg::serve::Supervisor::State::kServing      ? "serving"
          : state == hpcg::serve::Supervisor::State::kRecovering ? "recovering"
                                                                 : "unavailable";
      std::cout << "recovery: " << supervisor->restarts()
                << " restart(s), state " << state_text << ", "
                << counter_of(snap, "serve.recovery.parked") << " parked, "
                << counter_of(snap, "serve.recovery.resubmitted")
                << " resubmitted, "
                << counter_of(snap, "serve.recovery.replayed_batches")
                << " batches replayed, "
                << counter_of(snap, "serve.recovery.snapshot_saved")
                << " snapshot(s) saved / "
                << counter_of(snap, "serve.recovery.snapshot_restored")
                << " restored, " << counter_of(snap, "serve.degraded.shed")
                << " degraded shed\n";
    }
    if (injector) {
      for (const auto& event : injector->events()) {
        std::cout << "  fault: " << hpcg::fault::to_string(event.kind)
                  << " on rank " << event.rank << " at superstep "
                  << event.superstep << " (vtime " << event.vtime << " s)\n";
      }
    }
    std::cout << "total wall: " << serve_timer.elapsed() << " s\n";

    int exit_code = 0;
    if (final_check) {
      // Serve a cold CC through the (possibly recovered) frontend and
      // compare against the sequential reference on the committed graph.
      hpcg::serve::Request probe;
      probe.algo = hpcg::serve::Algo::kCc;
      probe.client = "final-check";
      std::int64_t served = -1;
      try {
        auto ticket = frontend->submit(std::move(probe));
        if (!script_path.empty()) frontend->drain();
        served = ticket.result.get().n_components;
      } catch (const std::exception& e) {
        std::cout << "final check: FAIL (probe failed: " << e.what() << ")\n";
        exit_code = 1;
      }
      if (exit_code == 0) {
        const auto committed = supervisor ? supervisor->mirror_copy() : graph;
        const auto expected = ref_component_count(committed);
        if (served == expected) {
          std::cout << "final check: OK (" << served << " components at epoch "
                    << (supervisor ? supervisor->epoch() : service->epoch())
                    << ")\n";
        } else {
          std::cout << "final check: FAIL (served " << served
                    << " components, reference " << expected << ")\n";
          exit_code = 1;
        }
      }
    }

    if (supervisor) {
      supervisor->stop();
    } else {
      service->stop();
      session->close();
    }

    const auto spans = recorder.spans();
    const auto report = hpcg::telemetry::analyze(spans, recorder.nranks());
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) return fail("cannot open --trace-out file " + trace_out);
      hpcg::telemetry::write_chrome_trace(out, spans, recorder.nranks());
      std::cout << "wrote " << spans.size() << " spans (" << grid.ranks()
                << " rank tracks + 1 request track) to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) return fail("cannot open --metrics-out file " + metrics_out);
      if (metrics_out.size() >= 4 &&
          metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0) {
        hpcg::telemetry::write_metrics_csv(out, snap, report);
      } else {
        hpcg::telemetry::write_metrics_json(out, snap, report);
      }
      std::cout << "wrote metrics to " << metrics_out << "\n";
    }
    return exit_code;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

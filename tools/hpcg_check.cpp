// Differential correctness fuzzer CLI (docs/CHECKING.md).
//
// Modes:
//   hpcg_check --seed=7 --configs=500            seeded sweep
//   hpcg_check --seed=7 --time-budget=60         sweep under a wall clock
//   hpcg_check --config='gen=er scale=6 ...'     one explicit config
//   hpcg_check --replay=tests/corpus/check.corpus  corpus replay
//   hpcg_check --canary                          self-test: injected bugs
//                                                must all be caught
//
// Exit codes: 0 = everything checked clean (or every canary was caught),
// 1 = a config failed an oracle (or a canary slipped through), 2 = usage.
#include <fstream>
#include <iostream>

#include "check/canary.hpp"
#include "check/fuzzer.hpp"
#include "check/runner.hpp"
#include "util/kernel_flags.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  options.usage(
      "usage: hpcg_check [options]\n"
      "Differential correctness fuzzer over the engine's config space.\n"
      "\n"
      "Sweep:\n"
      "  --seed=N            sampler seed (default 1)\n"
      "  --configs=N         configurations to check (default 100)\n"
      "  --time-budget=SECS  stop sampling after this wall time (default none)\n"
      "  --identity=BOOL     run identity variants: async flip, fault-free\n"
      "                      twin, alternate grid, serve-vs-direct (default\n"
      "                      true)\n"
      "  --shrink=BOOL       delta-debug failing configs (default true)\n"
      "  --shrink-attempts=N predicate evaluations per shrink (default 24)\n"
      "  --corpus-out=PATH   append shrunken failing configs to this corpus\n"
      "Single config / corpus:\n"
      "  --config=TEXT       check one explicit configuration\n"
      "  --replay=PATH       re-check every corpus entry in PATH\n"
      "  --threads=N         override thr= (worker threads) for --config\n"
      "                      and --replay runs\n"
      "  --async=on          force async=1 (with --async-chunk segments)\n"
      "                      for --config and --replay runs\n"
      "Self-test:\n"
      "  --canary            inject known bugs; every one must be caught\n");
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const auto configs = static_cast<int>(options.get_int("configs", 100));
  const double time_budget = options.get_double("time-budget", 0.0);
  const bool identity = options.get_bool("identity", true);
  const bool do_shrink = options.get_bool("shrink", true);
  const auto shrink_attempts =
      static_cast<int>(options.get_int("shrink-attempts", 24));
  const std::string corpus_out = options.get_string("corpus-out", "");
  const std::string config_text = options.get_string("config", "");
  const std::string replay_path = options.get_string("replay", "");
  const bool canary = options.get_bool("canary", false);
  hpcg::comm::KernelOptions kernel;
  try {
    kernel = hpcg::util::parse_kernel_options(options);
    if (kernel.chunk_grain > 0) {
      throw hpcg::comm::KernelOptionsError(
          "--chunk-grain is not part of the check config space (the grain "
          "cannot change results; sweep it with hpcg_run or the bench)");
    }
  } catch (const hpcg::comm::KernelOptionsError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  options.check_unknown();
  // Fold the CLI kernel flags into explicitly-supplied configs; sampled
  // sweep configs draw their own thr=/async= instead.
  const auto apply_kernel = [&](hpcg::check::CheckConfig cfg) {
    if (kernel.threads > 0) cfg.thr = kernel.threads;
    if (kernel.async == hpcg::comm::KernelOptions::Async::kOn) {
      cfg.async = true;
      cfg.chunk = kernel.chunk > 1 ? kernel.chunk : 1;
    }
    return cfg;
  };

  if (canary) {
    const auto outcomes = hpcg::check::run_canaries(&std::cout);
    int missed = 0;
    for (const auto& o : outcomes) missed += o.caught ? 0 : 1;
    std::cout << outcomes.size() - static_cast<std::size_t>(missed) << "/"
              << outcomes.size() << " injected bugs caught\n";
    return missed == 0 ? 0 : 1;
  }

  hpcg::check::FuzzOptions fuzz;
  fuzz.seed = seed;
  fuzz.configs = configs;
  fuzz.time_budget_s = time_budget;
  fuzz.with_identity = identity;
  fuzz.shrink_failures = do_shrink;
  fuzz.shrink_attempts = shrink_attempts;
  fuzz.log = &std::cout;

  hpcg::check::SweepResult result;
  try {
    if (!config_text.empty()) {
      result = hpcg::check::replay(
          {apply_kernel(hpcg::check::CheckConfig::parse(config_text))}, fuzz);
    } else if (!replay_path.empty()) {
      auto corpus = hpcg::check::read_corpus(replay_path);
      for (auto& c : corpus) c = apply_kernel(std::move(c));
      result = hpcg::check::replay(corpus, fuzz);
    } else {
      result = hpcg::check::fuzz_sweep(fuzz);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (!corpus_out.empty()) {
    for (const auto& report : result.reports) {
      hpcg::check::append_corpus(corpus_out, report.shrunk,
                                 report.failures.front().oracle + ": " +
                                     report.failures.front().detail);
    }
  }
  return result.ok() ? 0 : 1;
}

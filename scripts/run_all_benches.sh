#!/usr/bin/env bash
# Runs every figure/table benchmark with default settings, teeing console
# output and CSVs into results/. Usage: scripts/run_all_benches.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="results"
mkdir -p "${OUT_DIR}"

BENCHES=(
  bench_datasets
  bench_fig3_strong_scaling
  bench_fig4_weak_scaling
  bench_fig5_wdc
  bench_fig6_cc_ablation
  bench_fig7_nonsquare
  bench_fig8_complex
  bench_fig9_vs_gluon
  bench_fig10_vs_cugraph
  bench_ablation_distribution
  bench_ablation_dist_models
  bench_ablation_cc_algorithms
  bench_ablation_extensions
  bench_ablation_placement
)

for bench in "${BENCHES[@]}"; do
  echo "=== ${bench} ==="
  "${BUILD_DIR}/bench/${bench}" --csv="${OUT_DIR}/${bench}.csv" \
    | tee "${OUT_DIR}/${bench}.txt"
done

# Micro-benchmarks (google-benchmark; no CSV option of ours).
for micro in bench_micro_comm bench_micro_kernels; do
  echo "=== ${micro} ==="
  "${BUILD_DIR}/bench/${micro}" --benchmark_min_time=0.05 \
    | tee "${OUT_DIR}/${micro}.txt"
done

echo "All outputs in ${OUT_DIR}/"

// Connectivity analysis of a large graph: connected components with every
// optimization enabled, plus pointer-jumping root finding over the induced
// min-neighbor forest — the two propagation primitives the paper studies.
//
//   ./examples/connectivity_report [--ranks=25] [--dataset=cw-mini]
//
// Also demonstrates a deliberately non-square grid (the Figure 7 topic):
// 25 ranks become a 5x5 grid, 24 become 4x6.
#include <algorithm>
#include <iostream>
#include <map>

#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/pointer_jump.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/datasets.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 25));
  const std::string dataset = options.get_string("dataset", "cw-mini");
  const int shift = static_cast<int>(options.get_int("scale-shift", -2));
  options.check_unknown();

  auto graph = hpcg::graph::load_dataset(dataset, shift);
  const auto grid = hpcg::core::Grid::squarest(ranks);
  std::cout << dataset << " on a " << grid.row_groups() << "x"
            << grid.col_groups() << " grid\n";
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid);

  auto stats = hpcg::comm::Runtime::run(ranks, hpcg::comm::Topology::aimos(ranks),
                                        hpcg::comm::CostModel{},
                                        hpcg::comm::RunOptions{},
                                        [&](hpcg::comm::Comm& comm) {
    hpcg::core::Dist2DGraph g(comm, parts);

    auto cc = hpcg::algos::connected_components(
        g, hpcg::algos::CcOptions::all_push());
    auto labels =
        hpcg::algos::gather_row_state(g, std::span<const hpcg::graph::Gid>(cc.label));

    auto pj = hpcg::algos::pointer_jump(g);
    auto roots =
        hpcg::algos::gather_row_state(g, std::span<const hpcg::graph::Gid>(pj.root));

    if (comm.rank() == 0) {
      std::map<hpcg::graph::Gid, std::int64_t> components;
      for (const auto label : labels) ++components[label];
      std::int64_t largest = 0;
      for (const auto& [label, size] : components) largest = std::max(largest, size);
      std::int64_t forest_roots = 0;
      for (std::size_t v = 0; v < roots.size(); ++v) {
        if (roots[v] == static_cast<hpcg::graph::Gid>(v)) ++forest_roots;
      }
      std::cout << components.size() << " connected components (largest "
                << largest << " vertices), found in " << cc.iterations
                << " iterations (" << cc.dense_iterations << " dense, "
                << cc.sparse_iterations << " sparse)\n";
      std::cout << forest_roots << " forest roots located by pointer jumping in "
                << pj.rounds << " rounds\n";
    }
  });
  std::cout << "modeled time " << stats.makespan() << " s; " << stats.messages
            << " modeled messages\n";
  return 0;
}

// Weighted assignment with distributed approximate maximum weight matching:
// pair up entities along their strongest connection (e.g. peering
// donor/acceptor pairs, task/worker affinities). Demonstrates the paper's
// "complex reduction" communication class end to end, including the
// matching-quality guarantees of the locally-dominant 1/2-approximation.
//
//   ./examples/assignment_matching [--ranks=16] [--scale=12]
#include <iostream>

#include "algos/gather.hpp"
#include "algos/mwm.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 16));
  const int scale = static_cast<int>(options.get_int("scale", 12));
  options.check_unknown();

  // Affinity graph: RMAT topology with symmetric pseudo-random weights in
  // (0, 1] standing in for affinity scores.
  hpcg::graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  auto graph = hpcg::graph::generate_rmat(params);
  hpcg::graph::remove_self_loops(graph);
  hpcg::graph::attach_symmetric_weights(graph, /*seed=*/2025);
  hpcg::graph::symmetrize(graph);

  const auto grid = hpcg::core::Grid::squarest(ranks);
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid);

  auto stats = hpcg::comm::Runtime::run(ranks, hpcg::comm::Topology::aimos(ranks),
                                        hpcg::comm::CostModel{},
                                        hpcg::comm::RunOptions{},
                                        [&](hpcg::comm::Comm& comm) {
    hpcg::core::Dist2DGraph g(comm, parts);
    auto result = hpcg::algos::max_weight_matching(g);
    auto mate =
        hpcg::algos::gather_row_state(g, std::span<const hpcg::graph::Gid>(result.mate));

    if (comm.rank() == 0) {
      std::int64_t matched = 0;
      for (const auto m : mate) {
        if (m >= 0) ++matched;
      }
      std::cout << "matched " << matched / 2 << " pairs out of " << graph.n
                << " vertices in " << result.rounds << " rounds\n";
      // Spot-check validity: mates must be mutual.
      bool valid = true;
      for (std::size_t v = 0; v < mate.size(); ++v) {
        const auto m = mate[v];
        if (m >= 0 && mate[static_cast<std::size_t>(m)] !=
                          static_cast<hpcg::graph::Gid>(v)) {
          valid = false;
        }
      }
      std::cout << "matching is " << (valid ? "valid" : "INVALID")
                << " (mutual mates)\n";
    }
  });
  std::cout << "modeled time " << stats.makespan() << " s over " << ranks
            << " ranks\n";
  return 0;
}

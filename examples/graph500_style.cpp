// Graph500-style BFS benchmark run: the setting the paper repeatedly
// anchors against ("the de-facto standard approach for top-performers on
// benchmarks such as the Graph500"). Generates a Kronecker/RMAT graph with
// the official parameters, runs BFS from many pseudo-random roots,
// validates each tree, and reports per-search modeled TEPS plus the
// harmonic mean, as the Graph500 does.
//
//   ./examples/graph500_style [--scale=14] [--ranks=16] [--searches=8]
#include <cmath>
#include <iostream>

#include "algos/bfs.hpp"
#include "algos/gather.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 16));
  const int searches = static_cast<int>(options.get_int("searches", 8));
  options.check_unknown();

  hpcg::graph::RmatParams params;  // official Graph500 parameters
  params.scale = scale;
  params.edge_factor = 16;
  auto graph = hpcg::graph::generate_rmat(params);
  const auto m_directed = graph.m();
  hpcg::graph::remove_self_loops(graph);
  hpcg::graph::symmetrize(graph);
  std::cout << "scale " << scale << ": " << graph.n << " vertices, "
            << m_directed << " generated edges\n";

  const auto grid = hpcg::core::Grid::squarest(ranks);
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid);

  hpcg::util::Xoshiro256 rng(2025);
  double inv_teps_sum = 0.0;
  int valid_searches = 0;

  for (int s = 0; s < searches; ++s) {
    const auto root = static_cast<hpcg::graph::Gid>(
        rng.next_below(static_cast<std::uint64_t>(graph.n)));
    std::int64_t reached = 0;
    bool valid = true;
    auto stats = hpcg::comm::Runtime::run(ranks, hpcg::comm::Topology::aimos(ranks),
                                          hpcg::comm::CostModel{},
                                          hpcg::comm::RunOptions{},
                                          [&](hpcg::comm::Comm& comm) {
      hpcg::core::Dist2DGraph g(comm, parts);
      comm.reset_clocks();
      auto result = hpcg::algos::bfs_parents(g, root);
      auto levels = hpcg::algos::gather_row_state(
          g, std::span<const std::int64_t>(result.level));
      auto parents = hpcg::algos::gather_row_state(
          g, std::span<const hpcg::graph::Gid>(result.parent));
      if (comm.rank() != 0) return;
      // Graph500-style validation: root parentage, level consistency.
      const auto sroot = parts.relabel().to_new(root);
      if (parents[static_cast<std::size_t>(sroot)] != sroot) valid = false;
      for (std::size_t v = 0; v < levels.size(); ++v) {
        if (levels[v] == hpcg::algos::BfsResult::kUnvisited) continue;
        ++reached;
        const auto parent = parents[v];
        if (levels[v] > 0 &&
            levels[static_cast<std::size_t>(parent)] != levels[v] - 1) {
          valid = false;
        }
      }
    });
    if (reached < 2) {
      std::cout << "search " << s << ": root " << root
                << " reached nothing; skipped\n";
      continue;
    }
    // Graph500 counts the input edges within the traversed component; the
    // symmetrized traversal touches each input edge once.
    const double teps = static_cast<double>(m_directed) / stats.makespan();
    inv_teps_sum += 1.0 / teps;
    ++valid_searches;
    std::cout << "search " << s << ": root " << root << ", reached " << reached
              << ", " << (valid ? "VALID" : "INVALID") << ", modeled "
              << teps / 1e9 << " GTEPS\n";
    if (!valid) return 1;
  }
  if (valid_searches > 0) {
    std::cout << "harmonic mean: "
              << static_cast<double>(valid_searches) / inv_teps_sum / 1e9
              << " modeled GTEPS over " << valid_searches << " searches\n";
  }
  return 0;
}

// Community detection on a web-crawl-like graph with the 2.5D Label
// Propagation — the workload class the paper's introduction motivates
// (massive crawls such as WDC12 analyzed for host-level structure).
//
//   ./examples/web_communities [--ranks=32] [--dataset=wdc-mini]
//
// Prints the largest detected communities and the distributed run's
// computation/communication split.
#include <algorithm>
#include <iostream>
#include <map>

#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/datasets.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 32));
  const std::string dataset = options.get_string("dataset", "wdc-mini");
  const int iterations = static_cast<int>(options.get_int("iterations", 20));
  const int shift = static_cast<int>(options.get_int("scale-shift", -2));
  options.check_unknown();

  auto graph = hpcg::graph::load_dataset(dataset, shift);
  std::cout << dataset << ": " << graph.n << " vertices, " << graph.m()
            << " directed edges\n";

  const auto grid = hpcg::core::Grid::squarest(ranks);
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid);

  std::vector<std::uint64_t> labels;
  auto stats = hpcg::comm::Runtime::run(ranks, hpcg::comm::Topology::aimos(ranks),
                                        hpcg::comm::CostModel{},
                                        hpcg::comm::RunOptions{},
                                        [&](hpcg::comm::Comm& comm) {
    hpcg::core::Dist2DGraph g(comm, parts);
    auto result = hpcg::algos::label_propagation(g, iterations);
    auto gathered = hpcg::algos::gather_row_state(
        g, std::span<const std::uint64_t>(result.label));
    if (comm.rank() == 0) {
      labels = std::move(gathered);  // threads joined before main reads this
      std::cout << "label propagation: " << result.total_updates
                << " label updates over " << iterations << " iterations\n";
    }
  });

  std::map<std::uint64_t, std::int64_t> sizes;
  for (const auto label : labels) ++sizes[label];
  std::vector<std::pair<std::int64_t, std::uint64_t>> ranked;
  ranked.reserve(sizes.size());
  for (const auto& [label, count] : sizes) ranked.emplace_back(count, label);
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << sizes.size() << " communities; largest:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::cout << "  community " << ranked[i].second << ": " << ranked[i].first
              << " members\n";
  }
  std::cout << "modeled time " << stats.makespan() << " s (comp "
            << stats.max_comp() << ", comm " << stats.max_comm() << ")\n";
  return 0;
}

// Quickstart: build a graph, distribute it over a 2D grid of simulated
// ranks, run BFS and PageRank, and read back global results.
//
//   ./examples/quickstart [--ranks=16] [--scale=12]
//
// The same code drives 1 rank or 400: the Runtime spawns one thread per
// rank and the Comm handle provides the NCCL-style collectives the 2D
// engine is built on.
#include <iostream>

#include "algos/bfs.hpp"
#include "algos/gather.hpp"
#include "algos/pagerank.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  hpcg::util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 16));
  const int scale = static_cast<int>(options.get_int("scale", 12));
  options.check_unknown();

  // 1. Build an input graph on the host (here: a Graph500-style RMAT;
  //    any EdgeList works, including ones loaded with graph/io.hpp).
  hpcg::graph::RmatParams params;
  params.scale = scale;
  auto graph = hpcg::graph::generate_rmat(params);
  hpcg::graph::remove_self_loops(graph);
  hpcg::graph::symmetrize(graph);
  std::cout << "graph: " << graph.n << " vertices, " << graph.m()
            << " directed edges\n";

  // 2. Partition it over the most-square 2D grid for the rank count.
  const auto grid = hpcg::core::Grid::squarest(ranks);
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid);
  std::cout << "grid: " << grid.row_groups() << " x " << grid.col_groups()
            << " blocks (" << ranks << " ranks)\n";

  // 3. Run. Each rank thread builds its local view and the algorithms
  //    communicate through the row/column group collectives.
  auto stats = hpcg::comm::Runtime::run(ranks, hpcg::comm::Topology::aimos(ranks),
                                        hpcg::comm::CostModel{},
                                        hpcg::comm::RunOptions{},
                                        [&](hpcg::comm::Comm& comm) {
    hpcg::core::Dist2DGraph g(comm, parts);

    auto bfs = hpcg::algos::bfs(g, /*root=*/0);
    auto pr = hpcg::algos::pagerank(g, /*iterations=*/20);

    // Collect LID-indexed local state into global vectors (striped GID
    // space; relabel back with parts.relabel() if original ids matter).
    auto levels =
        hpcg::algos::gather_row_state(g, std::span<const std::int64_t>(bfs.level));
    auto ranks_pr = hpcg::algos::gather_row_state(g, std::span<const double>(pr));

    if (comm.rank() == 0) {
      std::int64_t reached = 0;
      for (const auto level : levels) {
        if (level != hpcg::algos::BfsResult::kUnvisited) ++reached;
      }
      double best_pr = 0.0;
      hpcg::graph::Gid best_v = 0;
      for (std::size_t v = 0; v < ranks_pr.size(); ++v) {
        if (ranks_pr[v] > best_pr) {
          best_pr = ranks_pr[v];
          best_v = parts.relabel().to_original(static_cast<hpcg::graph::Gid>(v));
        }
      }
      std::cout << "BFS reached " << reached << " vertices in " << bfs.depth
                << " levels (" << bfs.top_down_steps << " top-down, "
                << bfs.bottom_up_steps << " bottom-up)\n";
      std::cout << "highest PageRank: vertex " << best_v << " = " << best_pr
                << "\n";
    }
  });

  std::cout << "modeled time: " << stats.makespan() << " s  (comp "
            << stats.max_comp() << " s, comm " << stats.max_comm() << " s, "
            << stats.bytes << " bytes moved)\n";
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--ranks=9" "--scale=10")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_web_communities "/root/repo/build/examples/web_communities" "--ranks=8" "--scale-shift=-4")
set_tests_properties(example_web_communities PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_assignment_matching "/root/repo/build/examples/assignment_matching" "--ranks=6" "--scale=9")
set_tests_properties(example_assignment_matching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_connectivity_report "/root/repo/build/examples/connectivity_report" "--ranks=12" "--scale-shift=-4")
set_tests_properties(example_connectivity_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph500 "/root/repo/build/examples/graph500_style" "--scale=10" "--ranks=9" "--searches=3")
set_tests_properties(example_graph500 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for graph500_style.
# This may be replaced when dependencies are built.

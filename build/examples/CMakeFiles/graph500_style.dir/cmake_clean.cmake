file(REMOVE_RECURSE
  "CMakeFiles/graph500_style.dir/graph500_style.cpp.o"
  "CMakeFiles/graph500_style.dir/graph500_style.cpp.o.d"
  "graph500_style"
  "graph500_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

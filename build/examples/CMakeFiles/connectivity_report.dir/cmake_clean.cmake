file(REMOVE_RECURSE
  "CMakeFiles/connectivity_report.dir/connectivity_report.cpp.o"
  "CMakeFiles/connectivity_report.dir/connectivity_report.cpp.o.d"
  "connectivity_report"
  "connectivity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectivity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

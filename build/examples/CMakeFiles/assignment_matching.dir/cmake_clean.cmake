file(REMOVE_RECURSE
  "CMakeFiles/assignment_matching.dir/assignment_matching.cpp.o"
  "CMakeFiles/assignment_matching.dir/assignment_matching.cpp.o.d"
  "assignment_matching"
  "assignment_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

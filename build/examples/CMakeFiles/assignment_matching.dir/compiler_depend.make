# Empty compiler generated dependencies file for assignment_matching.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/edge_list.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/relabel.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/relabel.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/relabel.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/hpcg_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/hpcg_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/hpcg_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

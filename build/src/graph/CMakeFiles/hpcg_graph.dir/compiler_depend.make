# Empty compiler generated dependencies file for hpcg_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhpcg_graph.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hpcg_graph.dir/csr.cpp.o"
  "CMakeFiles/hpcg_graph.dir/csr.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/datasets.cpp.o"
  "CMakeFiles/hpcg_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/edge_list.cpp.o"
  "CMakeFiles/hpcg_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/generators.cpp.o"
  "CMakeFiles/hpcg_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/io.cpp.o"
  "CMakeFiles/hpcg_graph.dir/io.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/relabel.cpp.o"
  "CMakeFiles/hpcg_graph.dir/relabel.cpp.o.d"
  "CMakeFiles/hpcg_graph.dir/stats.cpp.o"
  "CMakeFiles/hpcg_graph.dir/stats.cpp.o.d"
  "libhpcg_graph.a"
  "libhpcg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

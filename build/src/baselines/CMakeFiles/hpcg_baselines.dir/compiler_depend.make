# Empty compiler generated dependencies file for hpcg_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhpcg_baselines.a"
)

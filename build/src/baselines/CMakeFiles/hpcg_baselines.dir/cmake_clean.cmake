file(REMOVE_RECURSE
  "CMakeFiles/hpcg_baselines.dir/dist15d.cpp.o"
  "CMakeFiles/hpcg_baselines.dir/dist15d.cpp.o.d"
  "CMakeFiles/hpcg_baselines.dir/dist1d.cpp.o"
  "CMakeFiles/hpcg_baselines.dir/dist1d.cpp.o.d"
  "CMakeFiles/hpcg_baselines.dir/gluon_like.cpp.o"
  "CMakeFiles/hpcg_baselines.dir/gluon_like.cpp.o.d"
  "CMakeFiles/hpcg_baselines.dir/spmv_pagerank.cpp.o"
  "CMakeFiles/hpcg_baselines.dir/spmv_pagerank.cpp.o.d"
  "libhpcg_baselines.a"
  "libhpcg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

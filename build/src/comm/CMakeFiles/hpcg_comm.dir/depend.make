# Empty dependencies file for hpcg_comm.
# This may be replaced when dependencies are built.

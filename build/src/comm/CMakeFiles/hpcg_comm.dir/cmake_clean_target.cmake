file(REMOVE_RECURSE
  "libhpcg_comm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hpcg_comm.dir/comm.cpp.o"
  "CMakeFiles/hpcg_comm.dir/comm.cpp.o.d"
  "CMakeFiles/hpcg_comm.dir/cost_model.cpp.o"
  "CMakeFiles/hpcg_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/hpcg_comm.dir/runtime.cpp.o"
  "CMakeFiles/hpcg_comm.dir/runtime.cpp.o.d"
  "CMakeFiles/hpcg_comm.dir/topology.cpp.o"
  "CMakeFiles/hpcg_comm.dir/topology.cpp.o.d"
  "libhpcg_comm.a"
  "libhpcg_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

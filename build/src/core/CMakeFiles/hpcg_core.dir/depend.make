# Empty dependencies file for hpcg_core.
# This may be replaced when dependencies are built.

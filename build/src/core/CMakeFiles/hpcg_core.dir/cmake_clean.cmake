file(REMOVE_RECURSE
  "CMakeFiles/hpcg_core.dir/dist2d.cpp.o"
  "CMakeFiles/hpcg_core.dir/dist2d.cpp.o.d"
  "CMakeFiles/hpcg_core.dir/manhattan.cpp.o"
  "CMakeFiles/hpcg_core.dir/manhattan.cpp.o.d"
  "CMakeFiles/hpcg_core.dir/reduce25d.cpp.o"
  "CMakeFiles/hpcg_core.dir/reduce25d.cpp.o.d"
  "libhpcg_core.a"
  "libhpcg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhpcg_core.a"
)

# Empty dependencies file for hpcg_algos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpcg_algos.dir/bfs.cpp.o"
  "CMakeFiles/hpcg_algos.dir/bfs.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/cc.cpp.o"
  "CMakeFiles/hpcg_algos.dir/cc.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/centrality.cpp.o"
  "CMakeFiles/hpcg_algos.dir/centrality.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/kcore.cpp.o"
  "CMakeFiles/hpcg_algos.dir/kcore.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/label_prop.cpp.o"
  "CMakeFiles/hpcg_algos.dir/label_prop.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/lca.cpp.o"
  "CMakeFiles/hpcg_algos.dir/lca.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/mwm.cpp.o"
  "CMakeFiles/hpcg_algos.dir/mwm.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/pagerank.cpp.o"
  "CMakeFiles/hpcg_algos.dir/pagerank.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/pointer_jump.cpp.o"
  "CMakeFiles/hpcg_algos.dir/pointer_jump.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/reference.cpp.o"
  "CMakeFiles/hpcg_algos.dir/reference.cpp.o.d"
  "CMakeFiles/hpcg_algos.dir/triangle_count.cpp.o"
  "CMakeFiles/hpcg_algos.dir/triangle_count.cpp.o.d"
  "libhpcg_algos.a"
  "libhpcg_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhpcg_algos.a"
)

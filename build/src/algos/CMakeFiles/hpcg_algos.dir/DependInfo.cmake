
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bfs.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/bfs.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/bfs.cpp.o.d"
  "/root/repo/src/algos/cc.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/cc.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/cc.cpp.o.d"
  "/root/repo/src/algos/centrality.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/centrality.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/centrality.cpp.o.d"
  "/root/repo/src/algos/kcore.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/kcore.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/kcore.cpp.o.d"
  "/root/repo/src/algos/label_prop.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/label_prop.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/label_prop.cpp.o.d"
  "/root/repo/src/algos/lca.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/lca.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/lca.cpp.o.d"
  "/root/repo/src/algos/mwm.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/mwm.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/mwm.cpp.o.d"
  "/root/repo/src/algos/pagerank.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/pagerank.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/pagerank.cpp.o.d"
  "/root/repo/src/algos/pointer_jump.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/pointer_jump.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/pointer_jump.cpp.o.d"
  "/root/repo/src/algos/reference.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/reference.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/reference.cpp.o.d"
  "/root/repo/src/algos/triangle_count.cpp" "src/algos/CMakeFiles/hpcg_algos.dir/triangle_count.cpp.o" "gcc" "src/algos/CMakeFiles/hpcg_algos.dir/triangle_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hpcg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hpcg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hpcg_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_comm_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_lid_map[1]_include.cmake")
include("/root/repo/build/tests/test_dist2d[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_core_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_comm[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_dist15d[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_graph_stats[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_scale[1]_include.cmake")
include("/root/repo/build/tests/test_comm_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_figure_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_dense_comm[1]_include.cmake")
include("/root/repo/build/tests/test_io_errors[1]_include.cmake")

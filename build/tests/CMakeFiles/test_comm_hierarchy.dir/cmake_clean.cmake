file(REMOVE_RECURSE
  "CMakeFiles/test_comm_hierarchy.dir/test_comm_hierarchy.cpp.o"
  "CMakeFiles/test_comm_hierarchy.dir/test_comm_hierarchy.cpp.o.d"
  "test_comm_hierarchy"
  "test_comm_hierarchy.pdb"
  "test_comm_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

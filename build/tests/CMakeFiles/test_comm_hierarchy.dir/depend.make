# Empty dependencies file for test_comm_hierarchy.
# This may be replaced when dependencies are built.

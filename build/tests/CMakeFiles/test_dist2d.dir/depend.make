# Empty dependencies file for test_dist2d.
# This may be replaced when dependencies are built.

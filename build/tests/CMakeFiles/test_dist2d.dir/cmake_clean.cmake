file(REMOVE_RECURSE
  "CMakeFiles/test_dist2d.dir/test_dist2d.cpp.o"
  "CMakeFiles/test_dist2d.dir/test_dist2d.cpp.o.d"
  "test_dist2d"
  "test_dist2d.pdb"
  "test_dist2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

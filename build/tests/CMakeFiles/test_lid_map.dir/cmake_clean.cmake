file(REMOVE_RECURSE
  "CMakeFiles/test_lid_map.dir/test_lid_map.cpp.o"
  "CMakeFiles/test_lid_map.dir/test_lid_map.cpp.o.d"
  "test_lid_map"
  "test_lid_map.pdb"
  "test_lid_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lid_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_lid_map.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dense_comm.dir/test_dense_comm.cpp.o"
  "CMakeFiles/test_dense_comm.dir/test_dense_comm.cpp.o.d"
  "test_dense_comm"
  "test_dense_comm.pdb"
  "test_dense_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

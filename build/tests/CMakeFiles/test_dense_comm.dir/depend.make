# Empty dependencies file for test_dense_comm.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_dist15d.
# This may be replaced when dependencies are built.

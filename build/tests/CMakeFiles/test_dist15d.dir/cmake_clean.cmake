file(REMOVE_RECURSE
  "CMakeFiles/test_dist15d.dir/test_dist15d.cpp.o"
  "CMakeFiles/test_dist15d.dir/test_dist15d.cpp.o.d"
  "test_dist15d"
  "test_dist15d.pdb"
  "test_dist15d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist15d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_comm.dir/test_sparse_comm.cpp.o"
  "CMakeFiles/test_sparse_comm.dir/test_sparse_comm.cpp.o.d"
  "test_sparse_comm"
  "test_sparse_comm.pdb"
  "test_sparse_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sparse_comm.
# This may be replaced when dependencies are built.

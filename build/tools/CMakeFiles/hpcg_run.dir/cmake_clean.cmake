file(REMOVE_RECURSE
  "CMakeFiles/hpcg_run.dir/hpcg_run.cpp.o"
  "CMakeFiles/hpcg_run.dir/hpcg_run.cpp.o.d"
  "hpcg_run"
  "hpcg_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hpcg_run.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for hpcg_gen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpcg_gen.dir/hpcg_gen.cpp.o"
  "CMakeFiles/hpcg_gen.dir/hpcg_gen.cpp.o.d"
  "hpcg_gen"
  "hpcg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

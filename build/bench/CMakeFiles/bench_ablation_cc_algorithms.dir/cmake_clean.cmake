file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cc_algorithms.dir/bench_ablation_cc_algorithms.cpp.o"
  "CMakeFiles/bench_ablation_cc_algorithms.dir/bench_ablation_cc_algorithms.cpp.o.d"
  "bench_ablation_cc_algorithms"
  "bench_ablation_cc_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cc_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

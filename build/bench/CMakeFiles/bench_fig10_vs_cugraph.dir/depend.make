# Empty dependencies file for bench_fig10_vs_cugraph.
# This may be replaced when dependencies are built.

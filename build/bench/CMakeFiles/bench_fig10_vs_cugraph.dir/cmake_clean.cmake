file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vs_cugraph.dir/bench_fig10_vs_cugraph.cpp.o"
  "CMakeFiles/bench_fig10_vs_cugraph.dir/bench_fig10_vs_cugraph.cpp.o.d"
  "bench_fig10_vs_cugraph"
  "bench_fig10_vs_cugraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vs_cugraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

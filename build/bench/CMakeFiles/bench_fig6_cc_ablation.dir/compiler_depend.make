# Empty compiler generated dependencies file for bench_fig6_cc_ablation.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_vs_gluon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vs_gluon.dir/bench_fig9_vs_gluon.cpp.o"
  "CMakeFiles/bench_fig9_vs_gluon.dir/bench_fig9_vs_gluon.cpp.o.d"
  "bench_fig9_vs_gluon"
  "bench_fig9_vs_gluon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vs_gluon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_wdc.dir/bench_fig5_wdc.cpp.o"
  "CMakeFiles/bench_fig5_wdc.dir/bench_fig5_wdc.cpp.o.d"
  "bench_fig5_wdc"
  "bench_fig5_wdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_wdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

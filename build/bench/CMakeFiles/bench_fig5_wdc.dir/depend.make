# Empty dependencies file for bench_fig5_wdc.
# This may be replaced when dependencies are built.

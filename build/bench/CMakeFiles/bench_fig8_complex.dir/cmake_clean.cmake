file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_complex.dir/bench_fig8_complex.cpp.o"
  "CMakeFiles/bench_fig8_complex.dir/bench_fig8_complex.cpp.o.d"
  "bench_fig8_complex"
  "bench_fig8_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

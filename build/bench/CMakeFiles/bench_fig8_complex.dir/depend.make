# Empty dependencies file for bench_fig8_complex.
# This may be replaced when dependencies are built.

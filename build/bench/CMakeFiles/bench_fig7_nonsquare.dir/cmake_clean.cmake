file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nonsquare.dir/bench_fig7_nonsquare.cpp.o"
  "CMakeFiles/bench_fig7_nonsquare.dir/bench_fig7_nonsquare.cpp.o.d"
  "bench_fig7_nonsquare"
  "bench_fig7_nonsquare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nonsquare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig7_nonsquare.
# This may be replaced when dependencies are built.

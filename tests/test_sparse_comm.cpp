// Sparse communications (Algorithms 3-5): equivalence with the dense
// exchange under idempotent reductions, changed-row tracking, and traffic
// proportionality — the property §3.3.2 is built on (volume scales with
// the number of state updates, not with N).
#include <gtest/gtest.h>

#include <mutex>

#include "core/dense_comm.hpp"
#include "core/sparse_comm.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;

namespace {

struct GridCase {
  int rows;
  int cols;
};

class SparseCommP : public ::testing::TestWithParam<GridCase> {};

/// Seeds every rank's state with to_gid(l), randomly lowers some row/col
/// values via the local "kernel", and checks that after the exchange every
/// rank agrees with a sequentially computed global minimum state.
TEST_P(SparseCommP, PushMatchesGlobalMinOracle) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 4, 401);
  const hc::Grid grid(rows, cols);

  // Oracle: each vertex's final value = min over every rank's simulated
  // local update (deterministic from (rank, gid)).
  const auto lower_value = [](int rank, hg::Gid gid) -> hg::Gid {
    const auto h = hpcg::util::splitmix64(
        static_cast<std::uint64_t>(rank) * 1315423911u + static_cast<std::uint64_t>(gid));
    return h % 3 == 0 ? gid / 2 : gid;  // some ranks lower some vertices
  };

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    std::vector<hg::Gid> state(static_cast<std::size_t>(lids.n_total()));
    hc::VertexQueue updated(lids.n_total());
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      state[static_cast<std::size_t>(l)] = lids.to_gid(l);
    }
    // Push semantics: the kernel writes column-vertex slots.
    for (hg::Gid gid = lids.col_offset(); gid < lids.col_offset() + lids.n_col();
         ++gid) {
      const auto lowered = lower_value(comm.rank(), gid);
      const hc::Lid l = lids.col_lid(gid);
      if (lowered < state[static_cast<std::size_t>(l)]) {
        state[static_cast<std::size_t>(l)] = lowered;
        updated.try_push(l);
      }
    }
    hc::VertexQueue changed(lids.n_total());
    hc::sparse_exchange(g, std::span(state), updated, hc::MinReduce<hg::Gid>{},
                        hc::SparseDirection::kPush, &changed);

    // Every slot must now hold the global minimum over the ranks that
    // could have written that vertex (its column group; all ranks see the
    // same columns per group, but every group covers every vertex's row
    // copy through phase 2).
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      const hg::Gid gid = lids.to_gid(l);
      hg::Gid expect = gid;
      for (int other = 0; other < grid.ranks(); ++other) {
        const hc::Grid gr = grid;
        // Only ranks whose column range contains gid wrote it.
        const hc::BlockPartition cols_part(el.n, gr.col_groups());
        if (cols_part.part_of(gid) == gr.col_group_of(other)) {
          expect = std::min(expect, lower_value(other, gid));
        }
      }
      EXPECT_EQ(state[static_cast<std::size_t>(l)], expect)
          << "lid " << l << " gid " << gid;
    }
    // changed_rows must contain exactly the row vertices whose final value
    // differs from the initial one.
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const bool did_change =
          state[static_cast<std::size_t>(v)] != lids.to_gid(v);
      EXPECT_EQ(changed.contains(v), did_change) << "row lid " << v;
    }
  });
}

TEST_P(SparseCommP, PullMatchesDenseExchange) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 5, 403);
  const hc::Grid grid(rows, cols);

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    const auto n_total = static_cast<std::size_t>(lids.n_total());
    // Two copies of the same initial state and the same local updates:
    // one goes through sparse pull, the other through dense pull.
    std::vector<hg::Gid> sparse_state(n_total);
    std::vector<hg::Gid> dense_state(n_total);
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      sparse_state[static_cast<std::size_t>(l)] = dense_state[static_cast<std::size_t>(l)] =
          lids.to_gid(l) + 1000;
    }
    hc::VertexQueue updated(lids.n_total());
    hpcg::util::Xoshiro256 rng(500 + static_cast<std::uint64_t>(comm.rank()));
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      if (rng.next_below(3) == 0) {
        const hg::Gid value = static_cast<hg::Gid>(rng.next_below(500));
        if (value < sparse_state[static_cast<std::size_t>(v)]) {
          sparse_state[static_cast<std::size_t>(v)] = value;
          dense_state[static_cast<std::size_t>(v)] = value;
          updated.try_push(v);
        }
      }
    }
    hc::sparse_exchange(g, std::span(sparse_state), updated, hc::MinReduce<hg::Gid>{},
                        hc::SparseDirection::kPull);
    hc::dense_exchange(g, std::span(dense_state), hpcg::comm::ReduceOp::kMin,
                       hc::Direction::kPull);
    for (std::size_t l = 0; l < n_total; ++l) {
      EXPECT_EQ(sparse_state[l], dense_state[l]) << "lid " << l;
    }
  });
}

TEST_P(SparseCommP, TrafficIsProportionalToUpdates) {
  const auto [rows, cols] = GetParam();
  if (rows * cols == 1) GTEST_SKIP() << "no communication on one rank";
  const auto el = small_rmat(8, 4, 405);
  const hc::Grid grid(rows, cols);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    std::vector<hg::Gid> state(static_cast<std::size_t>(lids.n_total()));
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      state[static_cast<std::size_t>(l)] = lids.to_gid(l);
    }
    // Exactly three updates.
    hc::VertexQueue updated(lids.n_total());
    for (hc::Lid l = 0; l < std::min<hc::Lid>(3, lids.n_col()); ++l) {
      const hc::Lid col = lids.c_offset_c() + l;
      state[static_cast<std::size_t>(col)] = -1;
      updated.try_push(col);
    }
    const auto traffic = hc::sparse_exchange(g, std::span(state), updated,
                                             hc::MinReduce<hg::Gid>{},
                                             hc::SparseDirection::kPush);
    EXPECT_LE(traffic.first_phase_sent, 3u);
    EXPECT_LE(traffic.second_phase_sent,
              static_cast<std::size_t>(lids.n_row()));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SparseCommP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{2, 3},
                      GridCase{3, 2}, GridCase{4, 4}, GridCase{1, 6},
                      GridCase{6, 1}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols);
    });

}  // namespace

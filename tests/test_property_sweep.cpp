// Randomized property sweep: many seeds x graph families, checking the
// structural invariants every distributed result must satisfy (rather than
// oracle equality, which test_algorithms covers on fixed inputs). Each
// seed produces a different random graph and runs on a pseudo-randomly
// chosen grid.
#include <gtest/gtest.h>

#include <set>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/mwm.hpp"
#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_er;
using hpcg::test::small_rmat;

namespace {

class PropertyP : public ::testing::TestWithParam<int> {};  // seed

hc::Grid grid_for_seed(int seed) {
  static constexpr std::pair<int, int> kGrids[] = {
      {1, 1}, {2, 2}, {2, 3}, {3, 2}, {1, 5}, {4, 1}, {3, 4}, {4, 4}};
  const auto& [rows, cols] =
      kGrids[hpcg::util::splitmix64(static_cast<std::uint64_t>(seed)) % 8];
  return hc::Grid(rows, cols);
}

hg::EdgeList graph_for_seed(int seed, bool weighted) {
  if (seed % 2 == 0) {
    return small_rmat(7, 3 + seed % 5, static_cast<std::uint64_t>(seed), weighted);
  }
  return small_er(150 + seed * 17, 600 + seed * 41,
                  static_cast<std::uint64_t>(seed), weighted);
}

TEST_P(PropertyP, BfsLevelsDifferByAtMostOneAcrossEdges) {
  const int seed = GetParam();
  const auto el = graph_for_seed(seed, false);
  const auto grid = grid_for_seed(seed);
  const auto striped = hpcg::test::striped_view(el, grid);

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    auto result = ha::bfs(g, seed % el.n);
    auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(result.level));
    if (comm.rank() != 0) return;
    const auto root = g.partition().relabel().to_new(seed % el.n);
    EXPECT_EQ(levels[static_cast<std::size_t>(root)], 0);
    for (const auto& e : striped.edges) {
      const auto lu = levels[static_cast<std::size_t>(e.u)];
      const auto lv = levels[static_cast<std::size_t>(e.v)];
      // Both endpoints reached or both unreached; levels differ by <= 1.
      EXPECT_EQ(lu == ha::BfsResult::kUnvisited, lv == ha::BfsResult::kUnvisited);
      if (lu != ha::BfsResult::kUnvisited) {
        EXPECT_LE(std::abs(lu - lv), 1) << e.u << "-" << e.v;
      }
    }
  });
}

TEST_P(PropertyP, CcLabelsConstantWithinAndDistinctAcrossComponents) {
  const int seed = GetParam();
  const auto el = graph_for_seed(seed, false);
  const auto grid = grid_for_seed(seed);
  const auto striped = hpcg::test::striped_view(el, grid);

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    auto result = ha::connected_components(
        g, seed % 2 ? ha::CcOptions::all_push() : ha::CcOptions::sp_sw_vq());
    auto labels = ha::gather_row_state(g, std::span<const hg::Gid>(result.label));
    if (comm.rank() != 0) return;
    // Along every edge: same label. Label is the min member id.
    for (const auto& e : striped.edges) {
      EXPECT_EQ(labels[static_cast<std::size_t>(e.u)],
                labels[static_cast<std::size_t>(e.v)]);
    }
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_LE(labels[static_cast<std::size_t>(v)], v);
      // The label is itself a member of the component with that label.
      EXPECT_EQ(labels[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])],
                labels[static_cast<std::size_t>(v)]);
    }
  });
}

TEST_P(PropertyP, MwmIsValidAndLocallyDominant) {
  const int seed = GetParam();
  const auto el = graph_for_seed(seed, true);
  const auto grid = grid_for_seed(seed);
  const auto striped = hpcg::test::striped_view(el, grid);
  hg::Csr csr(striped.n, striped.edges, striped.weights);

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    auto result = ha::max_weight_matching(g);
    auto mate = ha::gather_row_state(g, std::span<const hg::Gid>(result.mate));
    if (comm.rank() != 0) return;
    // Matching validity: mutual, and matched pairs share an edge.
    std::set<std::pair<hg::Gid, hg::Gid>> edges;
    for (const auto& e : striped.edges) edges.insert({e.u, e.v});
    for (hg::Gid v = 0; v < el.n; ++v) {
      const auto m = mate[static_cast<std::size_t>(v)];
      if (m < 0) continue;
      EXPECT_EQ(mate[static_cast<std::size_t>(m)], v);
      EXPECT_TRUE(edges.contains({v, m}));
    }
    // Maximality (which local dominance implies): no edge joins two
    // unmatched endpoints.
    for (const auto& e : striped.edges) {
      if (e.u == e.v) continue;
      EXPECT_FALSE(mate[static_cast<std::size_t>(e.u)] < 0 &&
                   mate[static_cast<std::size_t>(e.v)] < 0)
          << "augmentable edge " << e.u << "-" << e.v;
    }
    // 1/2-approximation: at least half the weight of the greedy optimum
    // bound (we use the reference matching as the locally-dominant
    // optimum; equality is checked elsewhere, the bound here guards it).
    const auto ref_mate = ha::ref::max_weight_matching(csr);
    EXPECT_GE(ha::ref::matching_weight(csr, mate) + 1e-12,
              0.5 * ha::ref::matching_weight(csr, ref_mate));
  });
}

TEST_P(PropertyP, PageRankMassIsConservedModuloDangling) {
  const int seed = GetParam();
  const auto el = graph_for_seed(seed, false);
  const auto grid = grid_for_seed(seed);

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    auto pr = ha::pagerank(g, 10);
    auto gathered = ha::gather_row_state(g, std::span<const double>(pr));
    if (comm.rank() != 0) return;
    double total = 0.0;
    double min_value = 1.0;
    for (const auto x : gathered) {
      total += x;
      min_value = std::min(min_value, x);
    }
    // Every vertex keeps at least the teleport mass; total is bounded by 1
    // (dangling vertices leak mass in this formulation, never create it).
    EXPECT_GE(min_value, (1.0 - 0.85) / static_cast<double>(el.n) - 1e-15);
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.1);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyP, ::testing::Range(1, 13),
                         ::testing::PrintToStringParamName());

}  // namespace

// Failure handling: a rank failing at any phase of a distributed run must
// surface the error to the caller without deadlocking the remaining ranks
// (the abort-aware barrier/mailbox machinery), and misuse of the API must
// be rejected loudly.
#include <gtest/gtest.h>

#include <atomic>

#include "algos/cc.hpp"
#include "algos/mwm.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;
namespace hcm = hpcg::comm;
using hpcg::test::small_rmat;

namespace {

TEST(FailureInjection, ThrowBeforeFirstCollective) {
  EXPECT_THROW(hcm::Runtime::run(6, hcm::Topology::aimos(6), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   if (comm.rank() == 5) {
                                     throw std::runtime_error("early");
                                   }
                                   std::vector<double> x(64, 1.0);
                                   comm.allreduce(std::span(x),
                                                  hcm::ReduceOp::kSum);
                                 }),
               std::runtime_error);
}

TEST(FailureInjection, ThrowBetweenCollectives) {
  EXPECT_THROW(hcm::Runtime::run(8, hcm::Topology::aimos(8), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   std::vector<double> x(64, 1.0);
                                   comm.allreduce(std::span(x), hcm::ReduceOp::kSum);
                                   if (comm.rank() == 3) {
                                     throw std::logic_error("mid");
                                   }
                                   comm.broadcast(std::span(x), 0);
                                   comm.barrier();
                                 }),
               std::logic_error);
}

TEST(FailureInjection, ThrowWhilePeersWaitInRecv) {
  EXPECT_THROW(hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   if (comm.rank() == 0) {
                                     throw std::runtime_error("sender died");
                                   }
                                   // Would block forever without abort.
                                   comm.recv<int>(0, /*tag=*/1);
                                 }),
               std::runtime_error);
}

TEST(FailureInjection, FirstErrorWins) {
  try {
    hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{}, hcm::RunOptions{},
                      [](hcm::Comm& comm) {
      if (comm.rank() == 2) throw std::runtime_error("rank 2");
      comm.barrier();  // everyone else aborts here
      throw std::runtime_error("should not be reached");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rank 2");
  }
}

TEST(FailureInjection, ThrowInsideDistributedAlgorithm) {
  const auto el = small_rmat(7, 4, 1301);
  const auto parts = hc::Partitioned2D::build(el, hc::Grid(2, 3));
  EXPECT_THROW(
      hcm::Runtime::run(6, hcm::Topology::aimos(6), hcm::CostModel{}, hcm::RunOptions{},
                        [&](hcm::Comm& comm) {
                          hc::Dist2DGraph g(comm, parts);
                          if (comm.rank() == 4) {
                            throw std::runtime_error("mid-algorithm");
                          }
                          hpcg::algos::connected_components(g);
                        }),
      std::runtime_error);
}

TEST(FailureInjection, WorldIsReusableAfterFailedRun) {
  // A failed run tears everything down; fresh runs must work after it.
  EXPECT_THROW(hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   if (comm.rank() == 1) throw std::runtime_error("x");
                                   comm.barrier();
                                 }),
               std::runtime_error);
  auto stats = hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{},
                                 hcm::RunOptions{},
                                 [](hcm::Comm& comm) { comm.barrier(); });
  EXPECT_EQ(stats.vclock.size(), 4u);
}

TEST(ApiMisuse, AlltoallvRejectsWrongCountsSize) {
  EXPECT_THROW(hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   std::vector<int> send(4, comm.rank());
                                   std::vector<std::size_t> counts(2, 2);  // != size
                                   comm.alltoallv(std::span<const int>(send),
                                                  std::span<const std::size_t>(counts));
                                 }),
               std::invalid_argument);
}

TEST(ApiMisuse, GridAndTopologyValidation) {
  EXPECT_THROW(hc::Grid(0, 4), std::invalid_argument);
  EXPECT_THROW(hcm::Runtime::run(4, hcm::Topology::aimos(8), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm&) {}),
               std::invalid_argument);
}

TEST(ApiMisuse, CommSizeMustMatchGrid) {
  const auto el = small_rmat(6, 4, 1303);
  const auto parts = hc::Partitioned2D::build(el, hc::Grid(2, 2));
  EXPECT_THROW(hcm::Runtime::run(6, hcm::Topology::aimos(6), hcm::CostModel{},
                                 hcm::RunOptions{}, [&](hcm::Comm& comm) {
                                   hc::Dist2DGraph g(comm, parts);  // 6 != 4
                                 }),
               std::invalid_argument);
}

TEST(ApiMisuse, WeightlessMatchingRejected) {
  const auto el = small_rmat(6, 4, 1305, /*weighted=*/false);
  const auto parts = hc::Partitioned2D::build(el, hc::Grid(2, 2));
  EXPECT_THROW(hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{},
                                 hcm::RunOptions{}, [&](hcm::Comm& comm) {
                                   hc::Dist2DGraph g(comm, parts);
                                   hpcg::algos::max_weight_matching(g);
                                 }),
               std::invalid_argument);
}

TEST(ApiMisuse, P2pRejectsOutOfRangePeersAndNegativeTags) {
  // Argument validation fires before any rendezvous, so every rank can
  // probe the misuse paths independently and still meet at the barrier.
  hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{}, hcm::RunOptions{},
                    [](hcm::Comm& comm) {
    const std::vector<int> payload(4, comm.rank());
    EXPECT_THROW(comm.send(std::span<const int>(payload), /*dest=*/4, /*tag=*/0),
                 std::invalid_argument);
    EXPECT_THROW(comm.send(std::span<const int>(payload), /*dest=*/-1, /*tag=*/0),
                 std::invalid_argument);
    EXPECT_THROW(comm.send(std::span<const int>(payload), /*dest=*/0, /*tag=*/-7),
                 std::invalid_argument);
    EXPECT_THROW(comm.recv<int>(/*src=*/4, /*tag=*/0), std::invalid_argument);
    EXPECT_THROW(comm.recv<int>(/*src=*/-2, /*tag=*/0), std::invalid_argument);
    EXPECT_THROW(comm.recv<int>(/*src=*/0, /*tag=*/-1), std::invalid_argument);
    comm.barrier();
  });
}

TEST(FailureInjection, ThrowMidSplit) {
  // One rank dies while the others are inside split(); the split must not
  // deadlock and the original error must surface.
  EXPECT_THROW(hcm::Runtime::run(6, hcm::Topology::aimos(6), hcm::CostModel{},
                                 hcm::RunOptions{}, [](hcm::Comm& comm) {
                                   if (comm.rank() == 2) {
                                     throw std::runtime_error("died in split");
                                   }
                                   auto half = comm.split(comm.rank() % 2,
                                                          comm.rank());
                                   half.barrier();
                                 }),
               std::runtime_error);
}

TEST(FailureInjection, ThrowMidMultiBroadcast) {
  EXPECT_THROW(
      hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{}, hcm::RunOptions{},
                        [](hcm::Comm& comm) {
                          std::vector<double> a(16, comm.rank());
                          std::vector<double> b(16, -comm.rank());
                          if (comm.rank() == 1) {
                            throw std::runtime_error("died in mbcast");
                          }
                          const hcm::BcastSeg<double> segs[] = {
                              {0, a.data(), a.size()},
                              {3, b.data(), b.size()},
                          };
                          comm.multi_broadcast(std::span<const hcm::BcastSeg<double>>(segs));
                        }),
      std::runtime_error);
}

TEST(FailureInjection, SplitReleasesChildGroupState) {
  // The parent group must not keep child groups of a completed split alive
  // (that was a leak: the last split's children lived as long as the
  // parent). After every member has taken its child, the parent holds none.
  hcm::Runtime::run(6, hcm::Topology::aimos(6), hcm::CostModel{}, hcm::RunOptions{},
                    [](hcm::Comm& comm) {
    auto half = comm.split(comm.rank() % 2, comm.rank());
    std::vector<std::int64_t> x(8, 1);
    half.allreduce(std::span(x), hcm::ReduceOp::kSum);
    EXPECT_EQ(x[0], 3);  // child groups really are the 3-rank halves
    comm.barrier();  // all members have taken their child by now
    EXPECT_EQ(comm.held_child_groups(), 0u);
  });
}

TEST(FailureInjection, ManyConcurrentAbortsSettle) {
  // Several ranks fail at different points simultaneously; the run must
  // still terminate with one of the injected errors.
  std::atomic<int> attempts{0};
  for (int trial = 0; trial < 5; ++trial) {
    try {
      hcm::Runtime::run(12, hcm::Topology::aimos(12), hcm::CostModel{},
                        hcm::RunOptions{}, [&](hcm::Comm& comm) {
        std::vector<int> x(8, comm.rank());
        comm.allreduce(std::span(x), hcm::ReduceOp::kSum);
        if (comm.rank() % 3 == 0) {
          attempts.fetch_add(1);
          throw std::runtime_error("multi-fail");
        }
        for (int i = 0; i < 4; ++i) comm.barrier();
      });
      FAIL() << "expected failure";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "multi-fail");
    }
  }
  EXPECT_GT(attempts.load(), 0);
}

}  // namespace

// Nonblocking collectives: request wait/test semantics, the overlap cost
// model (clock advances by max(compute, comm) at wait, never the sum; the
// shared channel serializes back-to-back transfers), interleaving with
// blocking collectives, mid-flight fault surfacing at wait(), and the
// guarantee that every algorithm is bit-identical with async on and off
// (including chunked pipelining).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "algos/pagerank.hpp"
#include "comm/errors.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hcm = hpcg::comm;
namespace hf = hpcg::fault;
namespace hg = hpcg::graph;
using hpcg::test::small_rmat;

namespace {

/// Zero-measured-compute cost model over a flat topology: modeled times
/// are a closed-form function of the collective sequence, so clock
/// assertions can be exact (same instrument as test_comm_hierarchy.cpp).
struct ExactClock {
  hcm::LinkParams link{10e-6, 1e9};
  hcm::Topology topo;
  hcm::CostModel cost;

  explicit ExactClock(int p)
      : topo(hcm::Topology::flat(p, link)), cost(make_params()) {}

  static hcm::CostParams make_params() {
    hcm::CostParams params;
    params.compute_scale = 0.0;
    params.software_alpha_s = 0.0;
    return params;
  }

  hcm::GroupLink group(int p) const {
    std::vector<int> members(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) members[static_cast<std::size_t>(i)] = i;
    return hcm::make_group_link(topo, members.data(), p);
  }
};

TEST(AsyncRequest, DefaultAndCompletedHandles) {
  hcm::Request empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_TRUE(empty.done());
  EXPECT_TRUE(empty.test());
  empty.wait();  // no-op
  EXPECT_DOUBLE_EQ(empty.cost_s(), 0.0);
  EXPECT_DOUBLE_EQ(empty.overlap_s(), 0.0);

  hcm::Runtime::run(2, hcm::Topology::aimos(2), hcm::CostModel{},
                    hcm::RunOptions{}, [](hcm::Comm& comm) {
    std::vector<double> x(64, comm.rank());
    auto req = comm.iallreduce(std::span(x), hcm::ReduceOp::kSum);
    EXPECT_TRUE(req.valid());
    EXPECT_FALSE(req.done());
    // test() never performs the rendezvous for a pending collective.
    EXPECT_FALSE(req.test());
    req.wait();
    EXPECT_TRUE(req.done());
    EXPECT_TRUE(req.test());
    req.wait();  // idempotent
    EXPECT_GT(req.cost_s(), 0.0);
    for (const auto v : x) EXPECT_DOUBLE_EQ(v, 1.0);
  });
}

TEST(AsyncClock, WaitAdvancesByMaxOfComputeAndComm) {
  // One iallreduce with X seconds of charged compute between issue and
  // wait: the clock must land on max(X, C), with overlap min(X, C) — never
  // the serialized X + C.
  const ExactClock exact(2);
  constexpr std::size_t kCount = 1000;
  const double c = exact.cost.allreduce(exact.group(2), kCount * sizeof(double));
  ASSERT_GT(c, 0.0);

  for (const double compute : {10.0 * c, 0.25 * c, 0.0}) {
    auto stats = hcm::Runtime::run(2, exact.topo, exact.cost, hcm::RunOptions{},
                                   [&](hcm::Comm& comm) {
      std::vector<double> x(kCount, comm.rank());
      auto req = comm.iallreduce(std::span(x), hcm::ReduceOp::kSum);
      comm.charge_compute(compute);
      req.wait();
      EXPECT_DOUBLE_EQ(req.cost_s(), c);
      EXPECT_DOUBLE_EQ(req.overlap_s(), std::min(compute, c));
      for (const auto v : x) EXPECT_DOUBLE_EQ(v, 1.0);
    });
    for (const auto t : stats.vclock) {
      EXPECT_DOUBLE_EQ(t, std::max(compute, c)) << "compute=" << compute;
    }
  }
}

TEST(AsyncClock, ChannelSerializesBackToBackTransfers) {
  // Three collectives in flight at once still share the modeled network:
  // waiting all of them costs 3C, exactly as the blocking sequence would.
  const ExactClock exact(4);
  constexpr std::size_t kCount = 512;
  const double c = exact.cost.allreduce(exact.group(4), kCount * sizeof(double));

  auto stats = hcm::Runtime::run(4, exact.topo, exact.cost, hcm::RunOptions{},
                                 [&](hcm::Comm& comm) {
    std::vector<double> a(kCount, 1.0), b(kCount, 2.0), d(kCount, 3.0);
    hcm::Request reqs[3] = {
        comm.iallreduce(std::span(a), hcm::ReduceOp::kSum),
        comm.iallreduce(std::span(b), hcm::ReduceOp::kSum),
        comm.iallreduce(std::span(d), hcm::ReduceOp::kSum),
    };
    hcm::wait_all(std::span<hcm::Request>(reqs));
    for (const auto& req : reqs) {
      EXPECT_TRUE(req.done());
      EXPECT_DOUBLE_EQ(req.cost_s(), c);
      EXPECT_DOUBLE_EQ(req.overlap_s(), 0.0);  // nothing hid the transfers
    }
    EXPECT_DOUBLE_EQ(a[0], 4.0);
    EXPECT_DOUBLE_EQ(b[0], 8.0);
    EXPECT_DOUBLE_EQ(d[0], 12.0);
  });
  for (const auto t : stats.vclock) EXPECT_DOUBLE_EQ(t, 3.0 * c);
}

TEST(AsyncClock, MixesWithBlockingCollectives) {
  // A blocking broadcast between issue and wait occupies the channel; the
  // async transfer is priced after it: total Cb + Ca, nothing hidden.
  const ExactClock exact(2);
  constexpr std::size_t kCount = 2048;
  const double ca = exact.cost.allreduce(exact.group(2), kCount * sizeof(double));
  const double cb = exact.cost.broadcast(exact.group(2), kCount * sizeof(float));

  auto stats = hcm::Runtime::run(2, exact.topo, exact.cost, hcm::RunOptions{},
                                 [&](hcm::Comm& comm) {
    std::vector<double> x(kCount, comm.rank());
    std::vector<float> y(kCount, comm.rank() == 0 ? 7.0f : -1.0f);
    auto req = comm.iallreduce(std::span(x), hcm::ReduceOp::kSum);
    comm.broadcast(std::span(y), 0);
    req.wait();
    EXPECT_DOUBLE_EQ(req.cost_s(), ca);
    EXPECT_DOUBLE_EQ(req.overlap_s(), 0.0);
    EXPECT_FLOAT_EQ(y[0], 7.0f);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
  });
  for (const auto t : stats.vclock) EXPECT_DOUBLE_EQ(t, cb + ca);
}

TEST(AsyncCollectives, ResultsMatchBlockingCounterparts) {
  constexpr int p = 6;
  hcm::Runtime::run(p, hcm::Topology::aimos(p), hcm::CostModel{},
                    hcm::RunOptions{}, [&](hcm::Comm& comm) {
    // iallreduce with a custom combiner.
    std::vector<std::int64_t> mx(5, 100 + comm.rank());
    auto r1 = comm.iallreduce(std::span(mx),
                              [](std::int64_t& into, const std::int64_t& from) {
                                into = std::max(into, from);
                              });
    r1.wait();
    for (const auto v : mx) EXPECT_EQ(v, 100 + p - 1);

    // ibroadcast from a non-zero root.
    std::vector<std::int32_t> b(9, comm.rank() == 2 ? 42 : -1);
    comm.ibroadcast(std::span(b), 2).wait();
    for (const auto v : b) EXPECT_EQ(v, 42);

    // imulti_broadcast: the segment list is taken by value, so a temporary
    // is fine; the payload buffers must outlive the wait.
    std::vector<std::int32_t> s0(3, comm.rank() == 1 ? 7 : 0);
    std::vector<std::int32_t> s1(4, comm.rank() == 4 ? 9 : 0);
    comm.imulti_broadcast(std::vector<hcm::BcastSeg<std::int32_t>>{
                              {1, s0.data(), s0.size()},
                              {4, s1.data(), s1.size()}})
        .wait();
    for (const auto v : s0) EXPECT_EQ(v, 7);
    for (const auto v : s1) EXPECT_EQ(v, 9);

    // iallgatherv against the blocking oracle.
    std::vector<std::int64_t> vsend(static_cast<std::size_t>(comm.rank()) % 3,
                                    comm.rank());
    std::vector<std::int64_t> gathered;
    std::vector<std::size_t> counts;
    auto r2 = comm.iallgatherv(std::span<const std::int64_t>(vsend), gathered,
                               &counts);
    r2.wait();
    std::vector<std::size_t> oracle_counts;
    const auto oracle =
        comm.allgatherv(std::span<const std::int64_t>(vsend), &oracle_counts);
    EXPECT_EQ(gathered, oracle);
    EXPECT_EQ(counts, oracle_counts);

    // ialltoallv against the blocking oracle.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::int64_t> send;
    for (int d = 0; d < p; ++d) {
      send_counts[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>((comm.rank() + d) % 3);
      for (std::size_t i = 0; i < send_counts[static_cast<std::size_t>(d)]; ++i) {
        send.push_back(comm.rank() * 1000 + d);
      }
    }
    std::vector<std::int64_t> recv;
    std::vector<std::size_t> recv_counts;
    auto r3 = comm.ialltoallv(std::span<const std::int64_t>(send),
                              std::span<const std::size_t>(send_counts), recv,
                              &recv_counts);
    r3.wait();
    std::vector<std::size_t> oracle_rc;
    const auto oracle_recv =
        comm.alltoallv(std::span<const std::int64_t>(send),
                       std::span<const std::size_t>(send_counts), &oracle_rc);
    EXPECT_EQ(recv, oracle_recv);
    EXPECT_EQ(recv_counts, oracle_rc);
  });
}

TEST(AsyncP2p, IsendIsEagerAndIrecvPollsWithTest) {
  constexpr int p = 4;
  hcm::Runtime::run(p, hcm::Topology::aimos(p), hcm::CostModel{},
                    hcm::RunOptions{}, [&](hcm::Comm& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    std::vector<std::int32_t> payload{comm.rank(), comm.rank() * 11};
    auto sreq = comm.isend(std::span<const std::int32_t>(payload), next,
                           /*tag=*/3);
    EXPECT_TRUE(sreq.done());  // sends are eager: enqueued at issue

    // After the barrier every send has been enqueued, so a single test()
    // poll must complete the receive without a blocking wait.
    comm.barrier();
    std::vector<std::int32_t> got;
    auto rreq = comm.irecv<std::int32_t>(prev, /*tag=*/3, got);
    EXPECT_TRUE(rreq.test());
    EXPECT_TRUE(rreq.done());
    rreq.wait();  // no-op after a successful poll
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev);
    EXPECT_EQ(got[1], prev * 11);
  });
}

TEST(AsyncFaults, CrashStashedAtIssueSurfacesAtWait) {
  // The injector keys on the issuing collective-seq (n1 here: the barrier
  // is n0), but the crash must not fire until the wait — the issuing rank
  // provably gets past the issue call first.
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:n1"), 4);
  hcm::RunOptions options;
  options.faults = &injector;
  std::atomic<bool> issued{false};
  EXPECT_THROW(
      hcm::Runtime::run(4, hcm::Topology::flat(4), hcm::CostModel{}, options,
                        [&](hcm::Comm& comm) {
                          comm.barrier();  // n0 on every rank
                          std::vector<double> x(64, 1.0);
                          auto req = comm.iallreduce(std::span(x),
                                                     hcm::ReduceOp::kSum);
                          if (comm.rank() == 1) issued.store(true);
                          comm.charge_compute(1e-6);
                          req.wait();  // rank 1 dies here
                        }),
      hcm::RankFailure);
  EXPECT_TRUE(issued.load());
  EXPECT_EQ(injector.fired(hf::FaultKind::kCrash), 1u);
  const auto events = injector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].collective_seq, 1);
}

/// Row-gathered results of all four async-capable algorithms under one
/// RunOptions configuration (rank 0's copy; all ranks agree).
struct AlgoResults {
  std::vector<std::int64_t> bfs_levels;
  std::vector<double> pagerank;
  std::vector<hg::Gid> cc_labels;
  std::vector<std::uint64_t> lp_labels;
};

AlgoResults run_algos(const hg::EdgeList& el, hc::Grid grid, bool async,
                      int chunk) {
  const auto parts = hc::Partitioned2D::build(el, grid);
  hcm::RunOptions options;
  options.async = async;
  options.async_chunk = chunk;
  AlgoResults out;
  hcm::Runtime::run(grid.ranks(), hcm::Topology::aimos(grid.ranks()),
                    hcm::CostModel{}, options, [&](hcm::Comm& comm) {
    hc::Dist2DGraph g(comm, parts);
    auto bfs = ha::bfs(g, 0);
    auto pr = ha::pagerank(g, 8);
    auto cc = ha::connected_components(g, ha::CcOptions::sp_sw_vq());
    auto lp = ha::label_propagation(g, 6);
    auto levels =
        ha::gather_row_state(g, std::span<const std::int64_t>(bfs.level));
    auto ranks = ha::gather_row_state(g, std::span<const double>(pr));
    auto colors = ha::gather_row_state(g, std::span<const hg::Gid>(cc.label));
    auto communities =
        ha::gather_row_state(g, std::span<const std::uint64_t>(lp.label));
    if (comm.rank() == 0) {
      out = {std::move(levels), std::move(ranks), std::move(colors),
             std::move(communities)};
    }
  });
  return out;
}

TEST(AsyncBitIdentity, AllAlgorithmsMatchSyncModeExactly) {
  // The acceptance bar for the whole overlap machinery: enabling async
  // (and chunked pipelining) must not change a single bit of any result.
  const auto el = small_rmat(8, 6, 1701);
  const hc::Grid grid(2, 3);
  const auto sync = run_algos(el, grid, /*async=*/false, /*chunk=*/1);
  const auto async1 = run_algos(el, grid, /*async=*/true, /*chunk=*/1);
  EXPECT_EQ(sync.bfs_levels, async1.bfs_levels);
  EXPECT_EQ(sync.pagerank, async1.pagerank);  // bit-identical FP order
  EXPECT_EQ(sync.cc_labels, async1.cc_labels);
  EXPECT_EQ(sync.lp_labels, async1.lp_labels);

  const auto async3 = run_algos(el, grid, /*async=*/true, /*chunk=*/3);
  EXPECT_EQ(sync.bfs_levels, async3.bfs_levels);
  EXPECT_EQ(sync.pagerank, async3.pagerank);
  EXPECT_EQ(sync.cc_labels, async3.cc_labels);
  EXPECT_EQ(sync.lp_labels, async3.lp_labels);
}

TEST(AsyncBitIdentity, PerAlgorithmOptInOverridesRunDefault) {
  // SparseOptions::on/off beat RunOptions::async: an async-default run
  // with explicit off must equal a sync-default run with explicit on.
  const auto el = small_rmat(7, 5, 1703);
  const auto parts = hc::Partitioned2D::build(el, hc::Grid(2, 2));
  auto run_with = [&](bool run_async, hc::SparseOptions opts) {
    std::vector<std::int64_t> levels;
    hcm::RunOptions options;
    options.async = run_async;
    hcm::Runtime::run(4, hcm::Topology::aimos(4), hcm::CostModel{}, options,
                      [&](hcm::Comm& comm) {
      hc::Dist2DGraph g(comm, parts);
      const ha::BfsOptions bfs_options = opts;
      auto bfs = ha::bfs(g, 0, bfs_options);
      auto gathered =
          ha::gather_row_state(g, std::span<const std::int64_t>(bfs.level));
      if (comm.rank() == 0) levels = std::move(gathered);
    });
    return levels;
  };
  const auto forced_off = run_with(true, hc::SparseOptions::off());
  const auto forced_on = run_with(false, hc::SparseOptions::on(2));
  const auto plain = run_with(false, {});
  EXPECT_EQ(forced_off, plain);
  EXPECT_EQ(forced_on, plain);
}

}  // namespace

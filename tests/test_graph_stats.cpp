// Graph statistics module + the structural properties DESIGN.md claims for
// the dataset analogs (skew classes, shallow vs deep diameter regimes).
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace hg = hpcg::graph;

namespace {

TEST(GraphStats, DegreeStatsOnKnownGraph) {
  // Star with center 0 and 5 leaves, symmetrized.
  hg::EdgeList el;
  el.n = 8;  // two isolated vertices
  for (hg::Gid v = 1; v <= 5; ++v) el.edges.push_back({0, v});
  hg::symmetrize(el);
  const auto stats = hg::degree_stats(el);
  EXPECT_EQ(stats.max_degree, 5);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 10.0 / 8.0);
  EXPECT_EQ(stats.isolated, 2);
  EXPECT_DOUBLE_EQ(stats.skew, 4.0);
}

TEST(GraphStats, ComponentsAndDiameterOnPath) {
  auto el = hg::generate_path(100);
  hg::symmetrize(el);
  EXPECT_EQ(hg::count_components(el), 1);
  // A path's diameter is n-1; BFS from any sample sees >= half of it.
  EXPECT_GE(hg::approx_diameter(el, 4, 7), 50);

  // Two components.
  hg::EdgeList two;
  two.n = 10;
  two.edges = {{0, 1}, {2, 3}};
  hg::symmetrize(two);
  EXPECT_EQ(hg::count_components(two), 8);  // 2 pairs + 6 singletons
}

TEST(GraphStats, EmptyGraph) {
  hg::EdgeList el;
  EXPECT_EQ(hg::degree_stats(el).max_degree, 0);
  EXPECT_EQ(hg::count_components(el), 0);
  EXPECT_EQ(hg::approx_diameter(el), 0);
}

TEST(DatasetRegimes, ShallowAnalogsHaveLowDiameter) {
  for (const auto* name : {"cw-mini", "wdc-mini"}) {
    const auto el = hg::load_dataset(name, /*scale_shift=*/-3);
    EXPECT_LT(hg::approx_diameter(el, 4, 3), 20) << name;
  }
}

TEST(DatasetRegimes, DeepAnalogsHaveLongTail) {
  for (const auto* name : {"cw-deep", "wdc-deep"}) {
    const auto el = hg::load_dataset(name, /*scale_shift=*/-3);
    // Chain + tendril structure: diameter in the many-dozens.
    EXPECT_GT(hg::approx_diameter(el, 4, 3), 60) << name;
  }
}

TEST(DatasetRegimes, SkewClassesMatchDesignClaims) {
  // Twitter analog: extreme skew. Friendster analog: milder. RAND: none.
  const auto tw = hg::degree_stats(hg::load_dataset("tw-mini", -2));
  const auto fr = hg::degree_stats(hg::load_dataset("fr-mini", -2));
  const auto rnd = hg::degree_stats(hg::load_dataset("rand12", 0));
  EXPECT_GT(tw.skew, fr.skew);
  EXPECT_GT(fr.skew, rnd.skew);
  EXPECT_LT(rnd.skew, 3.0);
}

}  // namespace

// I/O error paths and format robustness.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/io.hpp"

namespace hg = hpcg::graph;

namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(IoErrors, MissingFiles) {
  EXPECT_THROW(hg::read_text("/nonexistent/file.txt"), std::runtime_error);
  EXPECT_THROW(hg::read_binary("/nonexistent/file.bin"), std::runtime_error);
  EXPECT_THROW(hg::write_text({}, "/nonexistent/dir/file.txt"), std::runtime_error);
}

TEST(IoErrors, BadBinaryMagic) {
  const auto path = temp_file("hpcg_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = "not an edge list at all";
    out.write(junk, sizeof junk);
  }
  EXPECT_THROW(hg::read_binary(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoErrors, TruncatedBinaryPayload) {
  const auto path = temp_file("hpcg_truncated.bin");
  hg::EdgeList el;
  el.n = 100;
  for (hg::Gid v = 0; v + 1 < 50; ++v) el.edges.push_back({v, v + 1});
  hg::write_binary(el, path.string());
  // Chop the payload.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(hg::read_binary(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoErrors, MalformedTextLines) {
  const auto path = temp_file("hpcg_malformed.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers\n";
  }
  EXPECT_THROW(hg::read_text(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoErrors, MixedWeightedUnweightedRejected) {
  const auto path = temp_file("hpcg_mixed.txt");
  {
    std::ofstream out(path);
    out << "0 1 0.5\n2 3\n";
  }
  EXPECT_THROW(hg::read_text(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoErrors, DeclaredNTooSmallRejected) {
  const auto path = temp_file("hpcg_declared_n.txt");
  {
    std::ofstream out(path);
    out << "# n 3\n0 9\n";
  }
  EXPECT_THROW(hg::read_text(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoErrors, CommentsAndBlankLinesTolerated) {
  const auto path = temp_file("hpcg_comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n\n# n 10\n1 2\n\n3 4\n";
  }
  const auto el = hg::read_text(path.string());
  EXPECT_EQ(el.n, 10);
  EXPECT_EQ(el.m(), 2);
  std::filesystem::remove(path);
}

TEST(IoErrors, EmptyGraphRoundTrips) {
  const auto text = temp_file("hpcg_empty.txt");
  const auto bin = temp_file("hpcg_empty.bin");
  hg::EdgeList el;
  el.n = 7;  // vertices but no edges
  hg::write_text(el, text.string());
  hg::write_binary(el, bin.string());
  EXPECT_EQ(hg::read_text(text.string()).n, 7);
  EXPECT_EQ(hg::read_binary(bin.string()).n, 7);
  EXPECT_EQ(hg::read_binary(bin.string()).m(), 0);
  std::filesystem::remove(text);
  std::filesystem::remove(bin);
}

}  // namespace

// Determinism guarantees: rerunning any algorithm on the same input and
// grid gives bit-identical results, and — stronger, the property that makes
// distributed debugging tractable — results are identical across *different*
// grid shapes and rank counts (all tie-breaking is defined on global ids,
// never on rank order or arrival order).
#include <gtest/gtest.h>

#include <map>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "algos/mwm.hpp"
#include "algos/pagerank.hpp"
#include "algos/pointer_jump.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;

namespace {

/// Gathered results of all algorithms for one (graph, grid) run, reduced to
/// striped-invariant form: indexed/valued in ORIGINAL id space so runs
/// with different grids (different stripings) are comparable.
struct Results {
  std::vector<std::int64_t> bfs_levels;
  std::vector<hg::Gid> bfs_parents;
  std::vector<double> pagerank;
  std::vector<hg::Gid> cc;       // canonical: min original id in component
  std::vector<hg::Gid> mate;     // original ids
  std::vector<hg::Gid> pj_root;  // original ids
};

Results run_all(const hg::EdgeList& el, hc::Grid grid) {
  Results results;
  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    const auto& relabel = g.partition().relabel();
    const auto to_original_positions = [&](auto gathered) {
      std::decay_t<decltype(gathered)> out(gathered.size());
      for (std::size_t s = 0; s < gathered.size(); ++s) {
        out[static_cast<std::size_t>(relabel.to_original(static_cast<hg::Gid>(s)))] =
            gathered[s];
      }
      return out;
    };
    const auto map_values = [&](std::vector<hg::Gid> values) {
      for (auto& v : values) {
        if (v >= 0) v = relabel.to_original(v);
      }
      return values;
    };

    auto bfs = ha::bfs_parents(g, 3);
    auto pr = ha::pagerank(g, 10);
    auto cc = ha::connected_components(g, ha::CcOptions::sp_sw_vq());
    auto mwm = ha::max_weight_matching(g);
    auto pj = ha::pointer_jump(g);

    auto levels = to_original_positions(
        ha::gather_row_state(g, std::span<const std::int64_t>(bfs.level)));
    auto parents = map_values(to_original_positions(
        ha::gather_row_state(g, std::span<const hg::Gid>(bfs.parent))));
    auto ranks = to_original_positions(
        ha::gather_row_state(g, std::span<const double>(pr)));
    // Canonicalize CC: the propagated color is the component's minimum
    // *striped* id, which varies with the grid; relabel each component by
    // its minimum original id for grid-independent comparison.
    auto labels = map_values(to_original_positions(
        ha::gather_row_state(g, std::span<const hg::Gid>(cc.label))));
    {
      std::map<hg::Gid, hg::Gid> canonical;
      for (std::size_t v = 0; v < labels.size(); ++v) {
        auto [it, inserted] =
            canonical.try_emplace(labels[v], static_cast<hg::Gid>(v));
        if (!inserted) it->second = std::min(it->second, static_cast<hg::Gid>(v));
      }
      for (auto& label : labels) label = canonical.at(label);
    }
    auto mate = map_values(to_original_positions(
        ha::gather_row_state(g, std::span<const hg::Gid>(mwm.mate))));
    auto roots = map_values(to_original_positions(
        ha::gather_row_state(g, std::span<const hg::Gid>(pj.root))));

    if (comm.rank() == 0) {
      results = {std::move(levels), std::move(parents), std::move(ranks),
                 std::move(labels), std::move(mate), std::move(roots)};
    }
  });
  return results;
}

TEST(Determinism, RepeatRunsAreBitIdentical) {
  const auto el = small_rmat(8, 6, 1201, /*weighted=*/true);
  const hc::Grid grid(2, 3);
  const auto a = run_all(el, grid);
  const auto b = run_all(el, grid);
  EXPECT_EQ(a.bfs_levels, b.bfs_levels);
  EXPECT_EQ(a.bfs_parents, b.bfs_parents);
  EXPECT_EQ(a.pagerank, b.pagerank);  // bit-identical: same reduction order
  EXPECT_EQ(a.cc, b.cc);
  EXPECT_EQ(a.mate, b.mate);
  EXPECT_EQ(a.pj_root, b.pj_root);
}

TEST(Determinism, ResultsAgreeAcrossGridShapes) {
  const auto el = small_rmat(8, 6, 1203, /*weighted=*/true);
  const auto base = run_all(el, hc::Grid(1, 1));
  for (const auto& [rows, cols] :
       std::vector<std::pair<int, int>>{{2, 2}, {1, 6}, {4, 2}, {3, 5}}) {
    const auto other = run_all(el, hc::Grid(rows, cols));
    EXPECT_EQ(base.bfs_levels, other.bfs_levels) << rows << "x" << cols;
    // BFS parents: min-gid tie break is in striped space, which varies
    // with the grid's row-group count — compare via *levels of parents*
    // (any valid deterministic tree has the same level structure).
    ASSERT_EQ(base.bfs_parents.size(), other.bfs_parents.size());
    for (std::size_t v = 0; v < base.bfs_parents.size(); ++v) {
      const auto pa = base.bfs_parents[v];
      const auto pb = other.bfs_parents[v];
      EXPECT_EQ(pa >= 0, pb >= 0);
      if (pa >= 0 && pb >= 0) {
        EXPECT_EQ(base.bfs_levels[static_cast<std::size_t>(pa)],
                  other.bfs_levels[static_cast<std::size_t>(pb)]);
      }
    }
    for (std::size_t v = 0; v < base.pagerank.size(); ++v) {
      EXPECT_NEAR(base.pagerank[v], other.pagerank[v], 1e-10);
    }
    EXPECT_EQ(base.cc, other.cc) << rows << "x" << cols;
    EXPECT_EQ(base.mate, other.mate) << rows << "x" << cols;
    // (Pointer jumping is grid-dependent by construction: the min-neighbor
    // forest is built in striped id space, so different stripings induce
    // different — equally valid — forests. Covered by the repeat-run test.)
  }
}

}  // namespace

// Figure-shape regression tests: miniature, fast versions of each
// benchmark's key claim, asserted programmatically so a change that
// silently breaks a reproduced result fails CI rather than only showing
// up when someone reruns the benches and reads EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "baselines/dist1d.hpp"
#include "baselines/gluon_like.hpp"
#include "comm/runtime.hpp"
#include "graph/datasets.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hb = hpcg::baselines;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
namespace hcm = hpcg::comm;

namespace {

/// Figure-bench conditions at test size: calibrated topology + cost.
hcm::Topology topo(int p) { return hcm::Topology::aimos(p).with_alpha_scale(1e-3); }

hcm::CostModel cost() {
  hcm::CostParams params;
  params.software_alpha_s *= 1e-3;
  params.kernel_launch_s *= 1e-3;
  params.compute_scale = 0.0;
  params.per_edge_s = 2e-10;
  params.per_vertex_s = 5e-10;
  return hcm::CostModel(params);
}

double run_time(const hg::EdgeList& el, int p, const hcm::CostModel& model,
                const std::function<void(hc::Dist2DGraph&)>& body) {
  const auto grid = hc::Grid::squarest(p);
  const auto parts = hc::Partitioned2D::build(el, grid);
  auto stats = hcm::Runtime::run(p, topo(p), model, hcm::RunOptions{},
                                 [&](hcm::Comm& comm) {
    hc::Dist2DGraph g(comm, parts);
    comm.reset_clocks();
    body(g);
  });
  return stats.makespan();
}

TEST(FigureShapes, Fig3StrongScalingPrContinuesTo64) {
  const auto el = hg::load_dataset("tw-mini", -2);
  const double t4 = run_time(el, 4, cost(),
                             [](hc::Dist2DGraph& g) { ha::pagerank(g, 10); });
  const double t64 = run_time(el, 64, cost(),
                              [](hc::Dist2DGraph& g) { ha::pagerank(g, 10); });
  EXPECT_LT(t64, t4);  // strong scaling continues past the node boundary
}

TEST(FigureShapes, Fig6AblationOrderingHolds) {
  const auto el = hg::load_dataset("cw-deep", -2);
  const double base = run_time(el, 16, cost(), [](hc::Dist2DGraph& g) {
    ha::connected_components(g, ha::CcOptions::base());
  });
  const double all = run_time(el, 16, cost(), [](hc::Dist2DGraph& g) {
    ha::connected_components(g, ha::CcOptions::all_push());
  });
  // The full optimization stack must beat Base clearly on the deep input.
  EXPECT_LT(all * 2.0, base);
}

TEST(FigureShapes, Fig7ExtremeGridsLoseToSquare) {
  const auto el = hg::load_dataset("cw-mini", -3);
  const auto run_grid = [&](int rows, int cols) {
    const auto parts = hc::Partitioned2D::build(el, hc::Grid(rows, cols));
    auto stats = hcm::Runtime::run(rows * cols, topo(rows * cols), cost(),
                                   hcm::RunOptions{}, [&](hcm::Comm& comm) {
                                     hc::Dist2DGraph g(comm, parts);
                                     comm.reset_clocks();
                                     ha::connected_components(
                                         g, ha::CcOptions::all_push());
                                   });
    return stats.makespan();
  };
  const double square = run_grid(4, 4);
  EXPECT_LT(square, run_grid(1, 16));
  EXPECT_LT(square, run_grid(16, 1));
}

TEST(FigureShapes, Fig9GluonLosesAtScaleNotAtFour) {
  const auto el = hg::load_dataset("tw-mini", -2);
  auto gluon_params = hb::gluon_cost_params();
  gluon_params.software_alpha_s *= 1e-3;
  gluon_params.kernel_launch_s = cost().params().kernel_launch_s;
  gluon_params.compute_scale = 0.0;
  gluon_params.per_edge_s = 2e-10;
  gluon_params.per_vertex_s = 5e-10;
  const hcm::CostModel gluon_cost(gluon_params);

  const auto ours = [](hc::Dist2DGraph& g) { ha::pagerank(g, 10); };
  const auto theirs = [](hc::Dist2DGraph& g) { hb::gluon_pagerank(g, 10); };
  const double ours4 = run_time(el, 4, cost(), ours);
  const double gluon4 = run_time(el, 4, gluon_cost, theirs);
  const double ours64 = run_time(el, 64, cost(), ours);
  const double gluon64 = run_time(el, 64, gluon_cost, theirs);
  // Rough parity at 4 ranks; clear divergence at 64.
  EXPECT_LT(gluon4, 2.0 * ours4);
  EXPECT_GT(gluon64, 2.0 * ours64);
}

TEST(FigureShapes, DistModels2dNeedsFewerMessagesThan1d) {
  auto el = hg::load_dataset("tw-mini", -2);
  hg::randomize_ids(el, 5);
  const int p = 36;
  // 1D message count.
  const auto parts1d = hb::Partitioned1D::build(el, p);
  auto stats1d = hcm::Runtime::run(p, topo(p), cost(), hcm::RunOptions{},
                                   [&](hcm::Comm& comm) {
    hb::Dist1DGraph g(comm, parts1d);
    comm.reset_clocks();
    hb::connected_components_1d(g);
  });
  // 2D message count.
  const auto parts2d = hc::Partitioned2D::build(el, hc::Grid::squarest(p));
  auto stats2d = hcm::Runtime::run(p, topo(p), cost(), hcm::RunOptions{},
                                   [&](hcm::Comm& comm) {
    hc::Dist2DGraph g(comm, parts2d);
    comm.reset_clocks();
    ha::connected_components(g, ha::CcOptions::all_push());
  });
  EXPECT_LT(stats2d.messages * 2, stats1d.messages);
}

TEST(FigureShapes, Fig5CommSpeedupLessThanTotalSpeedup) {
  // "computation and communication also scales ... though the speedup is
  // less for communication."
  const auto el = hg::load_dataset("wdc-mini", -3);
  const auto run_stats = [&](int p) {
    const auto parts = hc::Partitioned2D::build(el, hc::Grid::squarest(p));
    return hcm::Runtime::run(p, topo(p), cost(), hcm::RunOptions{},
                             [&](hcm::Comm& comm) {
      hc::Dist2DGraph g(comm, parts);
      comm.reset_clocks();
      ha::pagerank(g, 10);
    });
  };
  const auto a = run_stats(16);
  const auto b = run_stats(64);
  const double comp_speedup = a.max_comp() / b.max_comp();
  const double comm_speedup = a.max_comm() / b.max_comm();
  EXPECT_GT(comp_speedup, 1.0);
  EXPECT_GT(comp_speedup, comm_speedup);
}

}  // namespace

// Scale smoke tests: the paper's headline rank counts (100-400) exercised
// end to end on small inputs. These catch anything that breaks only with
// many rank threads — barrier generations, grid factorizations with
// remainders, empty blocks, 20x20 packet routing.
#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/pointer_jump.hpp"
#include "algos/reference.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;
using hpcg::test::striped_view;

namespace {

class ScaleP : public ::testing::TestWithParam<int> {};

TEST_P(ScaleP, BfsAndCcCorrectAtScale) {
  const int p = GetParam();
  const auto grid = hc::Grid::squarest(p);
  const auto el = small_rmat(9, 6, 1501);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());
  const auto expect_bfs = ha::ref::bfs_levels(ref_csr, relabel.to_new(0));
  const auto expect_cc = ha::ref::connected_components(striped);

  const auto stats = run_on_grid(el, grid, [&](hpcg::comm::Comm& comm,
                                               hc::Dist2DGraph& g) {
    auto bfs = ha::bfs(g, 0);
    auto cc = ha::connected_components(g, ha::CcOptions::all_push());
    auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(bfs.level));
    auto labels = ha::gather_row_state(g, std::span<const hg::Gid>(cc.label));
    if (comm.rank() != 0) return;
    for (hg::Gid v = 0; v < el.n; ++v) {
      const auto want = expect_bfs[static_cast<std::size_t>(v)];
      ASSERT_EQ(levels[static_cast<std::size_t>(v)],
                want < 0 ? ha::BfsResult::kUnvisited : want)
          << "p=" << p << " v=" << v;
      ASSERT_EQ(labels[static_cast<std::size_t>(v)],
                expect_cc[static_cast<std::size_t>(v)]);
    }
  });
  EXPECT_EQ(stats.vclock.size(), static_cast<std::size_t>(p));
  EXPECT_GT(stats.makespan(), 0.0);
}

TEST_P(ScaleP, PacketSwappingDeliversAtScale) {
  const int p = GetParam();
  const auto grid = hc::Grid::squarest(p);
  const auto el = small_rmat(9, 4, 1503);
  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::pointer_jump(g);
    // Every row vertex's pointer ends on a fixpoint (a root).
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      const auto root = result.root[static_cast<std::size_t>(v)];
      if (g.lids().owns_row_gid(root)) {
        EXPECT_EQ(result.root[static_cast<std::size_t>(g.lids().row_lid(root))], root);
      }
    }
  });
}

// 100/144/400 are the paper's WDC rank counts (10x10, 12x12, 20x20);
// 37 is a prime (1x37 degenerate grid); 112 factors as 8x14.
INSTANTIATE_TEST_SUITE_P(RankCounts, ScaleP, ::testing::Values(37, 100, 112, 144, 400),
                         ::testing::PrintToStringParamName());

}  // namespace

// End-to-end correctness of all six distributed algorithms against the
// sequential reference oracles, swept over graph families and grid shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "algos/mwm.hpp"
#include "algos/pagerank.hpp"
#include "algos/pointer_jump.hpp"
#include "algos/reference.hpp"
#include "algos/centrality.hpp"
#include "algos/kcore.hpp"
#include "algos/lca.hpp"
#include "algos/triangle_count.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_er;
using hpcg::test::small_rmat;
using hpcg::test::striped_view;

namespace {

struct Case {
  std::string graph;  // "rmat", "er", "path", "grid"
  int rows;
  int cols;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.graph + "_" + std::to_string(info.param.rows) + "x" +
         std::to_string(info.param.cols);
}

hg::EdgeList make_graph(const std::string& kind, bool weighted) {
  if (kind == "rmat") return small_rmat(8, 8, 101, weighted);
  if (kind == "er") return small_er(300, 1200, 103, weighted);
  if (kind == "path") {
    auto el = hg::generate_path(257);
    if (weighted) hg::attach_symmetric_weights(el, 7);
    hg::symmetrize(el);
    return el;
  }
  if (kind == "grid") {
    auto el = hg::generate_grid(17, 19);
    if (weighted) hg::attach_symmetric_weights(el, 9);
    hg::symmetrize(el);
    return el;
  }
  throw std::invalid_argument("unknown graph kind " + kind);
}

class AlgosP : public ::testing::TestWithParam<Case> {};

TEST_P(AlgosP, BfsMatchesReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());

  const hg::Gid root = 1 % el.n;
  const auto expect = ha::ref::bfs_levels(ref_csr, relabel.to_new(root));

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::bfs(g, root);
    auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(result.level));
    for (hg::Gid v = 0; v < el.n; ++v) {
      const auto got = levels[static_cast<std::size_t>(v)];
      const auto want = expect[static_cast<std::size_t>(v)];
      if (want < 0) {
        EXPECT_EQ(got, ha::BfsResult::kUnvisited) << "vertex " << v;
      } else {
        EXPECT_EQ(got, want) << "vertex " << v;
      }
    }
  });
}

TEST_P(AlgosP, BfsForcedSingleDirectionAgrees) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());
  const auto expect = ha::ref::bfs_levels(ref_csr, relabel.to_new(0));

  // Pure top-down and a configuration biased hard toward bottom-up must
  // produce identical levels.
  for (const bool force_td : {true, false}) {
    run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
      ha::BfsOptions options;
      if (force_td) {
        options.direction_optimizing = false;
      } else {
        options.alpha = 1e9;  // never leaves top-down
        options.beta = 1e-9;  // unless forced; also exercise switch logic
        options.direction_optimizing = true;
      }
      auto result = ha::bfs(g, 0, options);
      auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(result.level));
      for (hg::Gid v = 0; v < el.n; ++v) {
        const auto want = expect[static_cast<std::size_t>(v)];
        EXPECT_EQ(levels[static_cast<std::size_t>(v)],
                  want < 0 ? ha::BfsResult::kUnvisited : want);
      }
    });
  }
}

TEST_P(AlgosP, PageRankMatchesReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect = ha::ref::pagerank(ref_csr, 10);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto pr = ha::pagerank(g, 10);
    auto gathered = ha::gather_row_state(g, std::span<const double>(pr));
    double total = 0.0;
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(gathered[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9)
          << "vertex " << v;
      total += gathered[static_cast<std::size_t>(v)];
    }
    EXPECT_GT(total, 0.1);  // mass sanity (dangling mass may leak)
  });
}

TEST_P(AlgosP, PageRankToleranceConverges) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  // Reference run long enough to be numerically converged.
  const auto expect = ha::ref::pagerank(ref_csr, 100);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::pagerank_tolerance(g, /*tolerance=*/1e-10, 200);
    EXPECT_GT(result.iterations, 3);
    EXPECT_LT(result.iterations, 200);
    EXPECT_LT(result.final_delta, 1e-10);
    auto gathered = ha::gather_row_state(g, std::span<const double>(result.rank));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(gathered[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-8)
          << "vertex " << v;
    }
  });
}

TEST_P(AlgosP, ConnectedComponentsAllVariantsMatchReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  const auto expect = ha::ref::connected_components(striped);

  const ha::CcOptions variants[] = {
      ha::CcOptions::base(),     ha::CcOptions::sp(),
      ha::CcOptions::sp_sw(),    ha::CcOptions::sp_sw_vq(),
      ha::CcOptions::all_push(),
  };
  for (const auto& options : variants) {
    run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
      auto result = ha::connected_components(g, options);
      auto labels = ha::gather_row_state(g, std::span<const hg::Gid>(result.label));
      for (hg::Gid v = 0; v < el.n; ++v) {
        EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)])
            << "vertex " << v << " variant push=" << options.push
            << " sp=" << options.sparse << " sw=" << options.auto_switch
            << " vq=" << options.vertex_queue;
      }
    });
  }
}

TEST_P(AlgosP, MwmMatchesReferenceExactly) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, true);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges, striped.weights);
  const auto expect = ha::ref::max_weight_matching(ref_csr);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::max_weight_matching(g);
    auto mate = ha::gather_row_state(g, std::span<const hg::Gid>(result.mate));
    // Valid matching: symmetric mates.
    for (hg::Gid v = 0; v < el.n; ++v) {
      const auto m = mate[static_cast<std::size_t>(v)];
      if (m >= 0) {
        EXPECT_EQ(mate[static_cast<std::size_t>(m)], v) << "asymmetric mate at " << v;
      }
      // Distinct weights make the locally dominant matching unique.
      EXPECT_EQ(m, expect[static_cast<std::size_t>(v)]) << "vertex " << v;
    }
    EXPECT_NEAR(ha::ref::matching_weight(ref_csr, mate),
                ha::ref::matching_weight(ref_csr, expect), 1e-12);
  });
}

TEST_P(AlgosP, LabelPropagationMatchesReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect = ha::ref::label_propagation(ref_csr, 8);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::label_propagation(g, 8);
    auto labels = ha::gather_row_state(g, std::span<const std::uint64_t>(result.label));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
  });
}

TEST_P(AlgosP, ShiloachVishkinCcMatchesColorPropagation) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  const auto expect = ha::ref::connected_components(striped);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::connected_components_sv(g);
    auto labels = ha::gather_row_state(g, std::span<const hg::Gid>(result.label));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
    // The point of hooking + jumping: logarithmic hook rounds, even on
    // high-diameter inputs where color propagation needs O(diameter).
    EXPECT_LE(result.rounds, 20);
  });
}

TEST_P(AlgosP, LcaQueriesMatchReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());

  // Deterministic query mix: nearby pairs, far pairs, self pairs.
  std::vector<ha::LcaQuery> queries;
  for (hg::Gid q = 0; q < 24; ++q) {
    queries.push_back({(q * 37) % el.n, (q * q * 11 + 3) % el.n});
  }
  queries.push_back({5 % el.n, 5 % el.n});

  std::vector<ha::LcaQuery> striped_queries;
  for (const auto& query : queries) {
    striped_queries.push_back({relabel.to_new(query.a), relabel.to_new(query.b)});
  }
  const auto expect = ha::ref::lca_queries(ref_csr, striped_queries);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto result = ha::lca_queries(g, queries);
    ASSERT_EQ(result.lca.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto want =
          expect[q] < 0 ? -1 : relabel.to_original(expect[q]);
      EXPECT_EQ(result.lca[q], want) << "query " << q;
    }
  });
}

TEST(AlgosEdgeCases, LcaOnKnownForest) {
  // Path 0-1-2-3-4-5 on a single-row-group grid (striping is then the
  // identity, so the min-neighbor forest is the path rooted at 0 and the
  // LCA of two path vertices is the one nearer the root). With more row
  // groups the striping permutes ids and induces a different — equally
  // valid — forest, covered by the reference-matched sweep above.
  auto el = hg::generate_path(6);
  el.n = 8;
  hg::symmetrize(el);
  run_on_grid(el, hc::Grid(1, 4), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto result = ha::lca_queries(
        g, {{3, 5}, {1, 4}, {2, 2}, {0, 5}, {6, 7} /*isolated: distinct trees*/});
    EXPECT_EQ(result.lca[0], 3);
    EXPECT_EQ(result.lca[1], 1);
    EXPECT_EQ(result.lca[2], 2);
    EXPECT_EQ(result.lca[3], 0);
    EXPECT_EQ(result.lca[4], -1);
  });
}

TEST_P(AlgosP, PointerJumpFindsRoots) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect = ha::ref::pointer_jump_roots(ref_csr);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::pointer_jump(g);
    auto roots = ha::gather_row_state(g, std::span<const hg::Gid>(result.root));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(roots[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
    // Pointer jumping halves pointer chains: rounds should be
    // logarithmic-ish, certainly far below the vertex count.
    EXPECT_LE(result.rounds, 66);
  });
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndGrids, AlgosP,
    ::testing::Values(Case{"rmat", 1, 1}, Case{"rmat", 2, 2}, Case{"rmat", 2, 4},
                      Case{"rmat", 4, 2}, Case{"rmat", 3, 3}, Case{"er", 2, 2},
                      Case{"er", 3, 5}, Case{"path", 2, 3}, Case{"grid", 4, 4},
                      Case{"grid", 1, 6}, Case{"rmat", 6, 1}),
    case_name);

TEST_P(AlgosP, BfsParentsFormValidTree) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());
  const hg::Gid root = 2 % el.n;
  const auto expect_levels = ha::ref::bfs_levels(ref_csr, relabel.to_new(root));

  // Build a striped-space adjacency set for tree-edge validation.
  std::set<std::pair<hg::Gid, hg::Gid>> edges;
  for (const auto& e : striped.edges) edges.insert({e.u, e.v});

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::bfs_parents(g, root);
    auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(result.level));
    auto parents = ha::gather_row_state(g, std::span<const hg::Gid>(result.parent));
    const auto sroot = relabel.to_new(root);
    // Graph500-style validation: levels match reference BFS; the root is
    // its own parent; every other reached vertex has a parent one level
    // shallower connected by a real edge.
    for (hg::Gid v = 0; v < el.n; ++v) {
      const auto want = expect_levels[static_cast<std::size_t>(v)];
      if (want < 0) {
        EXPECT_EQ(levels[static_cast<std::size_t>(v)], ha::BfsResult::kUnvisited);
        EXPECT_EQ(parents[static_cast<std::size_t>(v)], -1);
        continue;
      }
      EXPECT_EQ(levels[static_cast<std::size_t>(v)], want);
      const auto parent = parents[static_cast<std::size_t>(v)];
      if (v == sroot) {
        EXPECT_EQ(parent, sroot);
      } else {
        ASSERT_GE(parent, 0) << "vertex " << v;
        EXPECT_EQ(levels[static_cast<std::size_t>(parent)], want - 1);
        EXPECT_TRUE(edges.contains({parent, v}))
            << "tree edge " << parent << "->" << v << " not in graph";
      }
    }
  });
}

TEST(AlgosEdgeCases, BfsParentsDeterministicAcrossDirections) {
  const auto el = small_rmat(8, 8, 907);
  const hc::Grid grid(2, 3);
  std::vector<hg::Gid> td_parents;
  std::vector<hg::Gid> bu_parents;
  for (const bool force_bottom_up : {false, true}) {
    run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
      ha::BfsOptions options;
      options.direction_optimizing = force_bottom_up;
      options.alpha = force_bottom_up ? 1e-9 : 1e9;  // force BU immediately
      options.beta = 1e-9;
      auto result = ha::bfs_parents(g, 0, options);
      auto parents = ha::gather_row_state(g, std::span<const hg::Gid>(result.parent));
      if (comm.rank() == 0) {
        (force_bottom_up ? bu_parents : td_parents) = parents;
      }
    });
  }
  EXPECT_EQ(td_parents, bu_parents);
}

TEST_P(AlgosP, TriangleCountMatchesReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto expect = ha::ref::triangle_count(el);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto result = ha::triangle_count(g);
    EXPECT_EQ(result.triangles, expect);
    EXPECT_GE(result.wedges_checked, result.triangles);
  });
}

TEST_P(AlgosP, KcoreMatchesPeelingReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  const auto expect = ha::ref::kcore(striped);

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::kcore(g);
    auto core = ha::gather_row_state(g, std::span<const std::int64_t>(result.core));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(core[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
  });
}

TEST_P(AlgosP, HarmonicCentralityMatchesReference) {
  const auto& param = GetParam();
  const auto el = make_graph(param.graph, false);
  const hc::Grid grid(param.rows, param.cols);
  const auto striped = striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());

  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::harmonic_centrality(g, /*samples=*/4, /*seed=*/777);
    // Oracle over the same sources, mapped into striped space.
    std::vector<hg::Gid> striped_sources;
    for (const auto s : result.sources) striped_sources.push_back(relabel.to_new(s));
    const auto expect = ha::ref::harmonic_centrality(ref_csr, striped_sources);
    auto gathered = ha::gather_row_state(g, std::span<const double>(result.centrality));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(gathered[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-12)
          << "vertex " << v;
    }
  });
}

TEST(AlgosEdgeCases, KcoreKnownValues) {
  // K5 is a 4-core; a pendant path hanging off it is a 1-core.
  hg::EdgeList el;
  el.n = 16;
  for (hg::Gid a = 0; a < 5; ++a) {
    for (hg::Gid b = a + 1; b < 5; ++b) el.edges.push_back({a, b});
  }
  el.edges.push_back({4, 5});
  el.edges.push_back({5, 6});
  hg::symmetrize(el);
  const auto expect = ha::ref::kcore(el);  // identity striping check below
  EXPECT_EQ(expect[0], 4);
  EXPECT_EQ(expect[4], 4);
  EXPECT_EQ(expect[5], 1);
  EXPECT_EQ(expect[6], 1);
  EXPECT_EQ(expect[10], 0);  // isolated

  run_on_grid(el, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::kcore(g);
    auto core = ha::gather_row_state(g, std::span<const std::int64_t>(result.core));
    hg::StripedRelabel relabel(el.n, 2);
    EXPECT_EQ(core[static_cast<std::size_t>(relabel.to_new(0))], 4);
    EXPECT_EQ(core[static_cast<std::size_t>(relabel.to_new(5))], 1);
    EXPECT_EQ(core[static_cast<std::size_t>(relabel.to_new(10))], 0);
  });
}

TEST(AlgosEdgeCases, TriangleCountKnownSmallGraphs) {
  // K4 has 4 triangles; C5 (5-cycle) has none; K4 + chord-free path stays 4.
  hg::EdgeList k4;
  k4.n = 16;
  for (hg::Gid a = 0; a < 4; ++a) {
    for (hg::Gid b = a + 1; b < 4; ++b) k4.edges.push_back({a, b});
  }
  k4.edges.push_back({4, 5});
  k4.edges.push_back({5, 6});
  hg::symmetrize(k4);
  EXPECT_EQ(ha::ref::triangle_count(k4), 4);
  run_on_grid(k4, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    EXPECT_EQ(ha::triangle_count(g).triangles, 4);
  });

  auto c5 = hg::generate_path(5);
  c5.edges.push_back({4, 0});
  hg::symmetrize(c5);
  EXPECT_EQ(ha::ref::triangle_count(c5), 0);
  run_on_grid(c5, hc::Grid(1, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    EXPECT_EQ(ha::triangle_count(g).triangles, 0);
  });
}

TEST(AlgosEdgeCases, TriangleCountIgnoresMultiEdges) {
  hg::EdgeList el;
  el.n = 8;
  el.edges = {{0, 1}, {0, 1}, {1, 2}, {1, 2}, {0, 2}};  // one triangle, duplicated edges
  hg::symmetrize(el);
  EXPECT_EQ(ha::ref::triangle_count(el), 1);
  run_on_grid(el, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    EXPECT_EQ(ha::triangle_count(g).triangles, 1);
  });
}

TEST(AlgosEdgeCases, BfsFromIsolatedVertex) {
  hg::EdgeList el;
  el.n = 64;
  el.edges = {{1, 2}, {2, 3}};
  hg::symmetrize(el);
  run_on_grid(el, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::bfs(g, 0);  // vertex 0 has no edges
    auto levels = ha::gather_row_state(g, std::span<const std::int64_t>(result.level));
    EXPECT_EQ(levels[0], 0);
    for (hg::Gid v = 1; v < el.n; ++v) {
      EXPECT_EQ(levels[static_cast<std::size_t>(v)], ha::BfsResult::kUnvisited);
    }
  });
}

TEST(AlgosEdgeCases, CcOnEdgelessGraph) {
  hg::EdgeList el;
  el.n = 32;
  run_on_grid(el, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::connected_components(g);
    auto labels = ha::gather_row_state(g, std::span<const hg::Gid>(result.label));
    // Every vertex is its own component, labeled by its (striped) id.
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)], v);
    }
  });
}

TEST(AlgosEdgeCases, MwmOnTriangleTakesHeaviestEdge) {
  hg::EdgeList el;
  el.n = 16;
  el.edges = {{0, 1}, {1, 2}, {0, 2}};
  el.weights = {3.0, 2.0, 1.0};
  hg::symmetrize(el);
  run_on_grid(el, hc::Grid(2, 2), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto result = ha::max_weight_matching(g);
    auto mate = ha::gather_row_state(g, std::span<const hg::Gid>(result.mate));
    // Striped ids: with 2 row groups over 16 vertices, 0->0, 1->8, 2->1.
    hg::StripedRelabel relabel(el.n, 2);
    const auto s0 = relabel.to_new(0);
    const auto s1 = relabel.to_new(1);
    const auto s2 = relabel.to_new(2);
    EXPECT_EQ(mate[static_cast<std::size_t>(s0)], s1);
    EXPECT_EQ(mate[static_cast<std::size_t>(s1)], s0);
    EXPECT_EQ(mate[static_cast<std::size_t>(s2)], -1);
  });
}

}  // namespace

// Telemetry subsystem: span recording, metrics registry, Chrome-trace
// round-trip, analysis, and the guarantee that an untraced run is
// bit-identical to the pre-telemetry (seed) behavior.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::comm;
namespace ht = hpcg::telemetry;

namespace {

/// Work-proportional cost model: virtual clocks become a pure function of
/// the work performed, so traced and untraced runs are exactly comparable.
hc::CostParams deterministic_params() {
  hc::CostParams params;
  params.compute_scale = 0.0;
  params.per_edge_s = 2e-10;
  params.per_vertex_s = 5e-10;
  return params;
}

/// Runs PageRank on a small RMAT over a 2x2 grid with telemetry attached.
hc::RunStats traced_pagerank(ht::Recorder* recorder, int iterations = 5) {
  const auto el = hpcg::test::small_rmat(7, 4, 901);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  return hc::Runtime::run(
      4, hc::Topology::aimos(4), hc::CostModel(deterministic_params()),
      hc::RunOptions{.recorder = recorder}, [&](hc::Comm& comm) {
        hpcg::core::Dist2DGraph g(comm, parts);
        comm.reset_clocks();
        hpcg::algos::pagerank(g, iterations);
      });
}

TEST(TelemetrySpans, NestingAndOrderingPerRank) {
  ht::Recorder recorder(4);
  traced_pagerank(&recorder);

  for (int r = 0; r < 4; ++r) {
    const auto& spans = recorder.rank_spans(r);
    ASSERT_FALSE(spans.empty()) << "rank " << r << " recorded nothing";

    // Superstep spans: indices are sequential per rank, intervals ordered
    // and disjoint in virtual time.
    std::vector<const ht::SpanRecord*> steps;
    for (const auto& span : spans) {
      EXPECT_GE(span.end_s, span.start_s);
      EXPECT_EQ(span.rank, r);
      if (span.kind == ht::SpanKind::kSuperstep) steps.push_back(&span);
    }
    ASSERT_EQ(steps.size(), 5u) << "one superstep per PageRank iteration";
    for (std::size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(steps[i]->superstep, static_cast<int>(i));
      EXPECT_EQ(steps[i]->name, "pagerank");
      if (i > 0) {
        EXPECT_GE(steps[i]->start_s, steps[i - 1]->end_s);
      }
    }

    // Every span tagged with a superstep nests inside that superstep's
    // interval on the same rank.
    for (const auto& span : spans) {
      if (span.kind == ht::SpanKind::kSuperstep || span.superstep < 0) continue;
      ASSERT_LT(static_cast<std::size_t>(span.superstep), steps.size());
      const auto* step = steps[static_cast<std::size_t>(span.superstep)];
      EXPECT_GE(span.start_s, step->start_s);
      EXPECT_LE(span.end_s, step->end_s);
    }
  }

  // The merged view is sorted by (rank, start).
  const auto all = recorder.spans();
  for (std::size_t i = 1; i < all.size(); ++i) {
    const bool ordered = all[i - 1].rank < all[i].rank ||
                         (all[i - 1].rank == all[i].rank &&
                          all[i - 1].start_s <= all[i].start_s);
    EXPECT_TRUE(ordered) << "span " << i << " out of order";
  }
}

TEST(TelemetrySpans, CollectivesLandOnEveryMemberTrack) {
  ht::Recorder recorder(4);
  hc::Runtime::run(4, hc::Topology::flat(4), hc::CostModel(deterministic_params()),
                   hc::RunOptions{.recorder = &recorder}, [](hc::Comm& comm) {
                     std::vector<double> x(64, comm.rank());
                     comm.allreduce(std::span(x), hc::ReduceOp::kSum);
                   });
  for (int r = 0; r < 4; ++r) {
    int allreduces = 0;
    for (const auto& span : recorder.rank_spans(r)) {
      if (span.kind == ht::SpanKind::kCollective && span.name == "allreduce") {
        ++allreduces;
        EXPECT_EQ(span.group_size, 4);
        EXPECT_GT(span.bytes, 0u);
      }
    }
    EXPECT_EQ(allreduces, 1) << "rank " << r;
  }
}

TEST(TelemetryMetrics, AggregatesAcrossRanks) {
  ht::Recorder recorder(8);
  auto stats = hc::Runtime::run(
      8, hc::Topology::flat(8), hc::CostModel(deterministic_params()),
      hc::RunOptions{.recorder = &recorder}, [&](hc::Comm& comm) {
        recorder.metrics().counter("test.rank_visits").increment();
        std::vector<std::int64_t> x(32, comm.rank());
        comm.allreduce(std::span(x), hc::ReduceOp::kSum);
        comm.barrier();
      });
  const auto snap = recorder.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("test.rank_visits"), 8u);
  EXPECT_EQ(snap.counters.at("collectives.allreduce"), 1u);
  EXPECT_EQ(snap.counters.at("collectives.barrier"), 1u);
  // All traffic in this run came from the allreduce; the registry's
  // by-op byte counter must agree with the run's global byte counter.
  EXPECT_EQ(snap.counters.at("bytes.allreduce"), stats.bytes);
  EXPECT_EQ(snap.histograms.at("collective.bytes").count, 2u);
}

TEST(TelemetryMetrics, RegistryUnit) {
  ht::MetricsRegistry registry;
  registry.counter("c").add(41);
  registry.counter("c").increment();
  EXPECT_EQ(registry.counter("c").value(), 42u);

  registry.gauge("g").set(2.5);
  registry.gauge("g").set(1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").max(), 2.5);

  registry.histogram("h").observe(0);
  registry.histogram("h").observe(7);
  registry.histogram("h").observe(1024);
  EXPECT_EQ(registry.histogram("h").count(), 3u);
  EXPECT_EQ(registry.histogram("h").sum(), 1031u);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 42u);
  EXPECT_EQ(snap.histograms.at("h").buckets.size(), 3u);

  registry.reset();
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
}

TEST(TelemetryChromeTrace, RoundTripPreservesSchema) {
  ht::Recorder recorder(4);
  traced_pagerank(&recorder);
  const auto original = recorder.spans();
  ASSERT_FALSE(original.empty());

  std::ostringstream out;
  ht::write_chrome_trace(out, original, recorder.nranks());
  const auto parsed = ht::read_chrome_trace(out.str());

  EXPECT_EQ(parsed.nranks, 4);
  ASSERT_EQ(parsed.spans.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original[i];
    const auto& b = parsed.spans[i];
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.group_size, b.group_size);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.superstep, b.superstep);
    EXPECT_NEAR(a.start_s, b.start_s, 1e-12);
    EXPECT_NEAR(a.end_s, b.end_s, 1e-12);
  }

  // Timestamps are non-negative and monotone per rank track.
  double last = 0.0;
  int last_rank = -1;
  for (const auto& span : parsed.spans) {
    if (span.rank != last_rank) {
      last_rank = span.rank;
      last = 0.0;
    }
    EXPECT_GE(span.start_s, 0.0);
    EXPECT_GE(span.start_s, last);
    last = span.start_s;
  }
}

TEST(TelemetryChromeTrace, ReaderRejectsMalformedJson) {
  EXPECT_THROW(ht::read_chrome_trace("{\"traceEvents\": ["), std::runtime_error);
  EXPECT_THROW(ht::read_chrome_trace("[]"), std::runtime_error);
  EXPECT_THROW(ht::read_chrome_trace("{}"), std::runtime_error);
}

TEST(TelemetryRegression, UntracedRunIsBitIdenticalToSeedBehavior) {
  // Seed behavior: the overload without a recorder. Attaching a recorder
  // must not perturb any modeled quantity, and the no-recorder path must
  // match it bit for bit (the cost model is fully work-proportional here,
  // so clocks are a pure function of the computation).
  const auto baseline = traced_pagerank(nullptr);
  ht::Recorder recorder(4);
  const auto traced = traced_pagerank(&recorder);
  EXPECT_FALSE(recorder.spans().empty());

  ASSERT_EQ(baseline.vclock.size(), traced.vclock.size());
  for (std::size_t r = 0; r < baseline.vclock.size(); ++r) {
    EXPECT_EQ(baseline.vclock[r], traced.vclock[r]) << "rank " << r;
    EXPECT_EQ(baseline.comp_s[r], traced.comp_s[r]) << "rank " << r;
    EXPECT_EQ(baseline.comm_s[r], traced.comm_s[r]) << "rank " << r;
  }
  EXPECT_EQ(baseline.bytes, traced.bytes);
  EXPECT_EQ(baseline.messages, traced.messages);
  EXPECT_EQ(baseline.collectives, traced.collectives);
  EXPECT_EQ(baseline.makespan(), traced.makespan());
}

TEST(TelemetryAnalysis, FindsStragglerAndImbalance) {
  ht::Recorder recorder(4);
  hc::Runtime::run(4, hc::Topology::flat(4), hc::CostModel(deterministic_params()),
                   hc::RunOptions{.recorder = &recorder}, [](hc::Comm& comm) {
                     for (int step = 0; step < 3; ++step) {
                       {
                         auto span = comm.superstep_span("skewed", 100);
                         // Rank r computes (r+1) units: rank 3 is always
                         // the straggler and max/mean = 4 / 2.5 = 1.6.
                         comm.charge_compute(1e-3 * (comm.rank() + 1));
                       }
                       comm.barrier();
                     }
                   });
  const auto report = ht::analyze(recorder.spans(), recorder.nranks());
  ASSERT_EQ(report.supersteps.size(), 3u);
  EXPECT_EQ(report.straggler_rank, 3);
  for (const auto& step : report.supersteps) {
    EXPECT_EQ(step.label, "skewed");
    EXPECT_EQ(step.active_vertices, 100);
    EXPECT_EQ(step.ranks, 4);
    EXPECT_EQ(step.straggler, 3);
    EXPECT_NEAR(step.imbalance, 1.6, 0.05);
    EXPECT_NEAR(step.comp_max_s, 4e-3, 1e-4);
  }
  EXPECT_GT(report.critical_path_s, 0.0);
  EXPECT_LE(report.critical_path_s, report.makespan_s + 1e-12);
}

TEST(TelemetryAnalysis, SuperstepCompCommSplitCoversAlgorithms) {
  const auto el = hpcg::test::small_rmat(7, 4, 1203);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  ht::Recorder recorder(4);
  hc::Runtime::run(4, hc::Topology::aimos(4), hc::CostModel(deterministic_params()),
                   hc::RunOptions{.recorder = &recorder}, [&](hc::Comm& comm) {
                     hpcg::core::Dist2DGraph g(comm, parts);
                     comm.reset_clocks();
                     hpcg::algos::connected_components(
                         g, hpcg::algos::CcOptions::all_push());
                   });
  const auto report = ht::analyze(recorder.spans(), recorder.nranks());
  ASSERT_FALSE(report.supersteps.empty());
  for (const auto& step : report.supersteps) {
    EXPECT_EQ(step.label, "cc");
    EXPECT_GT(step.comp_max_s, 0.0);
    EXPECT_GT(step.comm_max_s, 0.0);
    EXPECT_GE(step.rank_max_s + 1e-12, step.comp_max_s);
  }
  // CC converges: the last supersteps report few updated vertices.
  EXPECT_GE(report.supersteps.front().active_vertices,
            report.supersteps.back().active_vertices);
}

TEST(TelemetryRecorder, ResetClocksDropsPriorSpans) {
  ht::Recorder recorder(2);
  hc::Runtime::run(2, hc::Topology::flat(2), hc::CostModel(deterministic_params()),
                   hc::RunOptions{.recorder = &recorder}, [](hc::Comm& comm) {
                     {
                       auto span = comm.phase_span("setup");
                       comm.barrier();
                     }
                     comm.reset_clocks();
                     comm.barrier();
                   });
  std::set<std::string> names;
  for (const auto& span : recorder.spans()) names.insert(span.name);
  EXPECT_FALSE(names.contains("setup"));
  EXPECT_TRUE(names.contains("barrier"));
}

TEST(TelemetryExport, MetricsJsonAndCsvCarryDerivedSeries) {
  ht::Recorder recorder(4);
  traced_pagerank(&recorder);
  const auto report = ht::analyze(recorder.spans(), recorder.nranks());
  const auto snap = recorder.metrics().snapshot();

  std::ostringstream json;
  ht::write_metrics_json(json, snap, report);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"supersteps\""), std::string::npos);
  EXPECT_NE(j.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(j.find("bytes.allreduce"), std::string::npos);

  std::ostringstream csv;
  ht::write_metrics_csv(csv, snap, report);
  const std::string c = csv.str();
  EXPECT_NE(c.find("metric,value\n"), std::string::npos);
  EXPECT_NE(c.find("superstep.0.imbalance,"), std::string::npos);
  EXPECT_NE(c.find("run.critical_path_s,"), std::string::npos);
}

}  // namespace

// Communicator hierarchies and exact virtual-clock accounting: split of
// split, disjoint-group concurrency, and hand-computed modeled times for
// known collective sequences (the cost model is the instrument every
// figure reads — its bookkeeping must be exact).
#include <gtest/gtest.h>

#include <numeric>

#include "comm/runtime.hpp"

namespace hc = hpcg::comm;

namespace {

TEST(CommHierarchy, SplitOfSplit) {
  // 12 ranks -> 3 colors of 4 -> each splits again into 2 of 2.
  hc::Runtime::run(12, hc::Topology::aimos(12), hc::CostModel{}, hc::RunOptions{},
                   [](hc::Comm& comm) {
    hc::Comm mid = comm.split(comm.rank() / 4, comm.rank() % 4);
    ASSERT_EQ(mid.size(), 4);
    hc::Comm leaf = mid.split(mid.rank() / 2, mid.rank() % 2);
    ASSERT_EQ(leaf.size(), 2);
    // Sum of world ranks within the leaf group.
    const auto sum = leaf.allreduce_one<std::int64_t>(comm.rank(), hc::ReduceOp::kSum);
    // Leaf partners are world ranks (base, base+1) where base is even
    // within the 4-rank mid group.
    const int base = (comm.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
    // The mid communicator still works after its child was created.
    const auto mid_max = mid.allreduce_one(comm.rank(), hc::ReduceOp::kMax);
    EXPECT_EQ(mid_max, (comm.rank() / 4) * 4 + 3);
  });
}

TEST(CommHierarchy, DisjointGroupsProgressIndependently) {
  // Odd/even groups issue different numbers of collectives concurrently;
  // the world barrier at the end must still line everyone up.
  auto stats = hc::Runtime::run(8, hc::Topology::aimos(8), hc::CostModel{},
                                hc::RunOptions{}, [](hc::Comm& comm) {
    hc::Comm half = comm.split(comm.rank() % 2, comm.rank());
    std::vector<double> x(256, 1.0);
    const int repeats = comm.rank() % 2 == 0 ? 3 : 9;
    for (int i = 0; i < repeats; ++i) {
      half.allreduce(std::span(x), hc::ReduceOp::kSum);
    }
    comm.barrier();
  });
  EXPECT_GT(stats.makespan(), 0.0);
}

TEST(ClockAccounting, SingleCollectiveMatchesHandComputedCost) {
  // Flat topology, known alpha/beta, compute_scale 0: the vclock after one
  // allreduce must equal the closed-form ring cost exactly.
  const hc::LinkParams link{10e-6, 1e9};
  const auto topo = hc::Topology::flat(4, link);
  hc::CostParams params;
  params.compute_scale = 0.0;
  params.software_alpha_s = 0.0;
  const hc::CostModel cost(params);

  constexpr std::size_t kCount = 1000;
  auto stats = hc::Runtime::run(4, topo, cost, hc::RunOptions{}, [](hc::Comm& comm) {
    std::vector<double> x(kCount, comm.rank());
    comm.allreduce(std::span(x), hc::ReduceOp::kSum);
  });
  const double bytes = kCount * sizeof(double);
  const double expect = 2.0 * 2.0 /*log2(4)*/ * link.alpha_s +
                        2.0 * bytes * 3.0 / (4.0 * link.beta_bytes_s);
  for (const auto t : stats.vclock) EXPECT_DOUBLE_EQ(t, expect);
  EXPECT_DOUBLE_EQ(stats.max_comm(), expect);
  EXPECT_DOUBLE_EQ(stats.max_comp(), 0.0);
}

TEST(ClockAccounting, SequenceAccumulates) {
  const hc::LinkParams link{5e-6, 2e9};
  const auto topo = hc::Topology::flat(8, link);
  hc::CostParams params;
  params.compute_scale = 0.0;
  params.software_alpha_s = 0.0;
  const hc::CostModel cost(params);
  const auto group = hc::make_group_link(topo, nullptr, 1);
  (void)group;

  auto stats = hc::Runtime::run(8, topo, cost, hc::RunOptions{}, [](hc::Comm& comm) {
    std::vector<float> x(512, 1.0f);
    comm.allreduce(std::span(x), hc::ReduceOp::kMax);  // 1
    comm.broadcast(std::span(x), 3);                   // 2
    comm.barrier();                                    // 3 (latency only)
  });
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const auto glink = hc::make_group_link(topo, members.data(), 8);
  const double expect = cost.allreduce(glink, 512 * sizeof(float)) +
                        cost.broadcast(glink, 512 * sizeof(float)) +
                        cost.allreduce(glink, 0);
  for (const auto t : stats.vclock) EXPECT_DOUBLE_EQ(t, expect);
  EXPECT_EQ(stats.collectives, 3u);
}

TEST(ClockAccounting, ExplicitChargesAccumulateAsCompute) {
  auto stats = hc::Runtime::run(2, hc::Topology::flat(2),
                                hc::CostModel(hc::CostParams{.compute_scale = 0.0}),
                                hc::RunOptions{}, [](hc::Comm& comm) {
                                  comm.charge_compute(comm.rank() == 0 ? 1e-3 : 2e-3);
                                  comm.barrier();
                                });
  // The barrier synchronizes both ranks to the slower rank's arrival.
  EXPECT_GE(stats.vclock[0], 2e-3);
  EXPECT_DOUBLE_EQ(stats.vclock[0], stats.vclock[1]);
  EXPECT_DOUBLE_EQ(stats.comp_s[1], 2e-3);
  EXPECT_DOUBLE_EQ(stats.comp_s[0], 1e-3);
  // Rank 0 waited ~1 ms inside the barrier: accounted as communication.
  EXPECT_GE(stats.comm_s[0], 1e-3);
}

TEST(ClockAccounting, ResetClocksZeroesEverything) {
  auto stats = hc::Runtime::run(4, hc::Topology::aimos(4), hc::CostModel{},
                                hc::RunOptions{}, [](hc::Comm& comm) {
    std::vector<double> x(4096, 1.0);
    comm.allreduce(std::span(x), hc::ReduceOp::kSum);
    comm.reset_clocks();
    comm.barrier();  // only this survives the reset
  });
  EXPECT_LT(stats.makespan(), 1e-4);
  EXPECT_GT(stats.makespan(), 0.0);
  EXPECT_EQ(stats.collectives, 1u);
}

}  // namespace

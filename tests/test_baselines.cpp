// The comparison baselines must be *correct* implementations — Figure 9/10
// comparisons are meaningless if the comparator computes something else.
// Every baseline is checked against the sequential oracles.
#include <gtest/gtest.h>

#include "algos/gather.hpp"
#include "algos/reference.hpp"
#include "baselines/dist1d.hpp"
#include "baselines/gluon_like.hpp"
#include "baselines/spmv_pagerank.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hb = hpcg::baselines;
namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::small_rmat;

namespace {

class BaselinesP : public ::testing::TestWithParam<int> {};  // nranks

TEST_P(BaselinesP, Dist1dPageRankMatchesReference) {
  const int p = GetParam();
  const auto el = small_rmat(8, 8, 211);
  const auto parts = hb::Partitioned1D::build(el, p);
  // The 1D striping uses p groups, so the striped view differs from 2D's.
  auto striped = el;
  parts.relabel().apply(striped);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect = ha::ref::pagerank(ref_csr, 8);

  hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                           hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
    hb::Dist1DGraph g(comm, parts);
    auto pr = hb::pagerank_1d(g, 8);
    auto gathered = hb::gather_state_1d(g, std::span<const double>(pr));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(gathered[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

TEST_P(BaselinesP, Dist1dCcAndBfsMatchReference) {
  const int p = GetParam();
  const auto el = small_rmat(8, 6, 223);
  const auto parts = hb::Partitioned1D::build(el, p);
  auto striped = el;
  parts.relabel().apply(striped);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect_cc = ha::ref::connected_components(striped);
  const auto expect_bfs = ha::ref::bfs_levels(ref_csr, parts.relabel().to_new(0));

  hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                           hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
    hb::Dist1DGraph g(comm, parts);
    auto labels = hb::gather_state_1d(
        g, std::span<const hg::Gid>(hb::connected_components_1d(g)));
    auto levels = hb::gather_state_1d(
        g, std::span<const std::int64_t>(hb::bfs_1d(g, 0)));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                expect_cc[static_cast<std::size_t>(v)]);
      const auto want = expect_bfs[static_cast<std::size_t>(v)];
      EXPECT_EQ(levels[static_cast<std::size_t>(v)],
                want < 0 ? (std::int64_t{1} << 62) : want);
    }
  });
}

TEST_P(BaselinesP, Dist1dDenseVariantsMatchOptimized) {
  const int p = GetParam();
  const auto el = small_rmat(8, 6, 233);
  const auto parts = hb::Partitioned1D::build(el, p);
  auto striped = el;
  parts.relabel().apply(striped);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect_cc = ha::ref::connected_components(striped);
  const auto expect_bfs = ha::ref::bfs_levels(ref_csr, parts.relabel().to_new(2));

  hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                           hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
    hb::Dist1DGraph g(comm, parts);
    auto labels = hb::gather_state_1d(
        g, std::span<const hg::Gid>(hb::connected_components_1d_dense(g)));
    auto levels = hb::gather_state_1d(
        g, std::span<const std::int64_t>(hb::bfs_1d_dense(g, 2)));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                expect_cc[static_cast<std::size_t>(v)]);
      const auto want = expect_bfs[static_cast<std::size_t>(v)];
      EXPECT_EQ(levels[static_cast<std::size_t>(v)],
                want < 0 ? (std::int64_t{1} << 62) : want);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, BaselinesP, ::testing::Values(1, 2, 4, 6, 9),
                         ::testing::PrintToStringParamName());

struct GridCase {
  int rows;
  int cols;
};

class GluonP : public ::testing::TestWithParam<GridCase> {};

TEST_P(GluonP, GluonVariantsMatchReference) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(8, 6, 227);
  const hc::Grid grid(rows, cols);
  const auto striped = hpcg::test::striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  hg::StripedRelabel relabel(el.n, grid.row_groups());
  const auto expect_pr = ha::ref::pagerank(ref_csr, 6);
  const auto expect_cc = ha::ref::connected_components(striped);
  const auto expect_bfs = ha::ref::bfs_levels(ref_csr, relabel.to_new(0));

  hpcg::test::run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto pr = ha::gather_row_state(
        g, std::span<const double>(hb::gluon_pagerank(g, 6)));
    auto cc = ha::gather_row_state(
        g, std::span<const hg::Gid>(hb::gluon_connected_components(g)));
    auto bfs = ha::gather_row_state(
        g, std::span<const std::int64_t>(hb::gluon_bfs(g, 0)));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(pr[static_cast<std::size_t>(v)],
                  expect_pr[static_cast<std::size_t>(v)], 1e-9);
      EXPECT_EQ(cc[static_cast<std::size_t>(v)],
                expect_cc[static_cast<std::size_t>(v)]);
      const auto want = expect_bfs[static_cast<std::size_t>(v)];
      EXPECT_EQ(bfs[static_cast<std::size_t>(v)],
                want < 0 ? (std::int64_t{1} << 62) : want);
    }
  });
}

TEST_P(GluonP, SpmvPageRankMatchesReference) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(8, 8, 229);
  const hc::Grid grid(rows, cols);
  const auto striped = hpcg::test::striped_view(el, grid);
  hg::Csr ref_csr(striped.n, striped.edges);
  const auto expect = ha::ref::pagerank(ref_csr, 8);

  hpcg::test::run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    auto pr = ha::gather_row_state(
        g, std::span<const double>(hb::spmv_pagerank(g, 8)));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_NEAR(pr[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GluonP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{2, 3},
                      GridCase{4, 2}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols);
    });

TEST(GluonCost, ParamsPenalizeSubstrate) {
  const auto params = hb::gluon_cost_params();
  EXPECT_GT(params.software_alpha_s, hpcg::comm::CostParams{}.software_alpha_s);
  EXPECT_LT(params.bw_derate, 1.0);
}

}  // namespace

// Serving-layer tests: batched multi-source BFS exactness, session
// lifecycle, result-cache semantics, deterministic admission control, and
// the histogram quantile summaries the latency reporting rides on.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <sstream>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/gather.hpp"
#include "algos/msbfs.hpp"
#include "algos/pagerank.hpp"
#include "graph/stats.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "telemetry/report.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hs = hpcg::serve;
namespace ht = hpcg::telemetry;
using hpcg::graph::Gid;
using hpcg::test::small_rmat;

namespace {

// Runs batched MS-BFS and per-source single BFS on the same resident
// distribution and demands bit-identical levels on every rank.
void expect_msbfs_matches(hs::Session& session, const std::vector<Gid>& roots,
                          const hc::SparseOptions& sparse = {}) {
  session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm&) {
    const ha::MsBfsOptions mo = sparse;
    const auto batched = ha::multi_source_bfs(g, roots, mo);
    for (std::size_t s = 0; s < roots.size(); ++s) {
      const ha::BfsOptions bo = sparse;
      const auto single = ha::bfs(g, roots[s], bo);
      EXPECT_EQ(batched.level[s], single.level) << "source " << s;
      EXPECT_EQ(batched.depth[s], single.depth) << "source " << s;
    }
  });
}

}  // namespace

TEST(MsBfs, BitIdenticalToSequentialBfs) {
  const auto el = small_rmat(9, 8, 3);
  hs::Session session(el, hc::Grid(2, 3));
  expect_msbfs_matches(session, {0, 1, 7, 100, 200, 333});
}

TEST(MsBfs, FullBatchOf64) {
  const auto el = small_rmat(8, 8, 5);
  std::vector<Gid> roots;
  for (Gid v = 0; v < 64; ++v) roots.push_back(v * 3 % el.n);
  hs::Session session(el, hc::Grid(2, 2));
  expect_msbfs_matches(session, roots);
}

TEST(MsBfs, AsyncExchangeBitIdentical) {
  const auto el = small_rmat(9, 8, 3);
  hs::SessionOptions sopts;
  sopts.async = true;
  sopts.async_chunk = 2;
  hs::Session session(el, hc::Grid(2, 3), sopts);
  expect_msbfs_matches(session, {0, 5, 11, 500}, hc::SparseOptions::on(2));
}

TEST(MsBfs, BitIdenticalUnderTransientFaults) {
  const auto el = small_rmat(8, 8, 7);
  const std::vector<Gid> roots{0, 3, 9, 40};

  std::vector<std::vector<std::int64_t>> clean;
  {
    hs::Session session(el, hc::Grid(2, 2));
    session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm& comm) {
      const auto result = ha::multi_source_bfs(g, roots);
      if (comm.rank() == 0) clean = result.level;
    });
  }

  // Transient collective failures retry internally; the traversal must not
  // notice them.
  hpcg::fault::FaultInjector injector(
      hpcg::fault::FaultPlan::parse("transient@r1:n2:x2,transient@r3:n5:x1"), 4);
  hs::SessionOptions sopts;
  sopts.faults = &injector;
  hs::Session session(el, hc::Grid(2, 2), sopts);
  session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm& comm) {
    const auto result = ha::multi_source_bfs(g, roots);
    if (comm.rank() == 0) {
      EXPECT_EQ(result.level, clean);
    }
  });
  EXPECT_FALSE(injector.events().empty());
}

TEST(MsBfs, RejectsMalformedBatches) {
  const auto el = small_rmat(7, 8, 1);
  hs::Session session(el, hc::Grid(2, 2));
  session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm&) {
    const std::vector<Gid> empty;
    const std::vector<Gid> too_many(65, Gid{0});
    const std::vector<Gid> out_of_range{el.n};
    const std::vector<Gid> negative{Gid{-1}};
    EXPECT_THROW(ha::multi_source_bfs(g, empty), std::invalid_argument);
    EXPECT_THROW(ha::multi_source_bfs(g, too_many), std::invalid_argument);
    EXPECT_THROW(ha::multi_source_bfs(g, out_of_range), std::invalid_argument);
    EXPECT_THROW(ha::multi_source_bfs(g, negative), std::invalid_argument);
  });
}

TEST(Session, ReusedAcrossJobsAndIdempotentClose) {
  const auto el = small_rmat(7, 8, 2);
  hs::Session session(el, hc::Grid(2, 2));
  EXPECT_TRUE(session.alive());
  EXPECT_EQ(session.nranks(), 4);

  std::atomic<int> runs{0};
  for (int i = 0; i < 3; ++i) {
    session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm&) {
      EXPECT_EQ(g.n(), el.n);
      runs.fetch_add(1);
    });
  }
  EXPECT_EQ(runs.load(), 3 * session.nranks());

  session.close();
  EXPECT_FALSE(session.alive());
  session.close();  // idempotent
  EXPECT_THROW(
      session.run([](hc::Dist2DGraph&, hpcg::comm::Comm&) {}),
      hs::SessionClosed);
}

TEST(Session, JobFailureKillsTheSession) {
  const auto el = small_rmat(7, 8, 2);
  hs::Session session(el, hc::Grid(2, 2));
  EXPECT_THROW(session.run([](hc::Dist2DGraph&, hpcg::comm::Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("boom");
    comm.barrier();  // other ranks park in a collective until the abort
  }),
               hs::SessionClosed);
  EXPECT_FALSE(session.alive());
  EXPECT_THROW(
      session.run([](hc::Dist2DGraph&, hpcg::comm::Comm&) {}),
      hs::SessionClosed);
}

TEST(ResultCache, LruHitMissEviction) {
  hs::ResultCache cache(2);
  const auto entry = [](std::uint64_t id) {
    auto r = std::make_shared<hs::Response>();
    r->id = id;
    return std::shared_ptr<const hs::Response>(std::move(r));
  };
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", entry(1));
  cache.put("b", entry(2));
  EXPECT_EQ(cache.get("a")->id, 1u);  // bumps 'a' ahead of 'b'
  cache.put("c", entry(3));           // evicts 'b', the LRU entry
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_EQ(cache.get("a")->id, 1u);
  EXPECT_EQ(cache.get("c")->id, 3u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);

  hs::ResultCache disabled(0);
  disabled.put("a", entry(1));
  EXPECT_EQ(disabled.get("a"), nullptr);
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(Service, BatchedAnswersMatchSingleAndCacheHits) {
  const auto el = small_rmat(8, 8, 4);
  hs::Session session(el, hc::Grid(2, 2));
  hs::ServiceOptions vopts;
  vopts.auto_dispatch = false;
  vopts.cache_capacity = 0;  // the verify request must actually re-run
  hs::Service service(session, vopts);

  // Three coalescible BFS requests plus one PageRank behind them.
  std::vector<hs::Service::Ticket> tickets;
  for (const Gid root : {Gid{0}, Gid{17}, Gid{99}}) {
    hs::Request request;
    request.roots = {root};
    tickets.push_back(service.submit(std::move(request)));
  }
  hs::Request pr;
  pr.algo = hs::Algo::kPageRank;
  pr.iterations = 3;
  auto pr_ticket = service.submit(std::move(pr));

  EXPECT_TRUE(service.pump());  // one round: the whole BFS batch
  for (const auto& ticket : tickets) {
    EXPECT_EQ(ticket.result.get().batch_size, 3);
  }
  service.drain();
  EXPECT_EQ(pr_ticket.result.get().rank.size(),
            static_cast<std::size_t>(el.n));

  // The batched answer must be bit-identical to a fresh non-batched
  // single-source run through algos::bfs (a lone popped request skips the
  // multi-source path entirely).
  hs::Request single;
  single.roots = {Gid{17}};
  auto verify = service.submit(std::move(single));
  service.drain();
  const auto fresh = verify.result.get();
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_EQ(fresh.batch_size, 1);
  const auto batched = tickets[1].result.get();  // root 17 inside the batch
  EXPECT_EQ(fresh.levels, batched.levels);
  EXPECT_EQ(fresh.depth, batched.depth);

  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.batches"), 1u);
  EXPECT_EQ(snap.counters.at("serve.batched_requests"), 3u);

  service.stop();
  session.close();
}

TEST(Service, CacheHitBypassesQueue) {
  const auto el = small_rmat(8, 8, 4);
  hs::Session session(el, hc::Grid(2, 2));
  hs::ServiceOptions vopts;
  vopts.auto_dispatch = false;
  hs::Service service(session, vopts);

  hs::Request request;
  request.roots = {Gid{5}};
  auto first = service.submit(request);
  service.drain();
  const auto first_response = first.result.get();
  EXPECT_FALSE(first_response.from_cache);

  auto second = service.submit(request);
  // Completed synchronously inside submit: no pump needed.
  const auto second_response = second.result.get();
  EXPECT_TRUE(second_response.from_cache);
  EXPECT_EQ(second_response.levels, first_response.levels);
  EXPECT_EQ(second_response.depth, first_response.depth);
  EXPECT_GT(second_response.id, first_response.id);
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_EQ(service.queue_depth(), 0u);

  service.stop();
  session.close();
}

TEST(Service, DeterministicAdmissionRejectionOrder) {
  const auto el = small_rmat(7, 8, 6);
  const std::string script_text =
      "client alice\n"
      "bfs 0\n"
      "bfs 1\n"
      "bfs 2\n"  // alice hits her quota of 2 -> client_quota
      "client bob\n"
      "bfs 3\n"
      "bfs 4\n"  // queue (capacity 3) is full -> queue_full
      "drain\n"
      "bfs 5\n"
      "cc\n";

  const auto run_once = [&] {
    hs::Session session(el, hc::Grid(2, 2));
    hs::ServiceOptions vopts;
    vopts.auto_dispatch = false;
    vopts.queue_capacity = 3;
    vopts.max_inflight_per_client = 2;
    vopts.cache_capacity = 0;  // keep both passes on the same code path
    hs::Service service(session, vopts);
    std::istringstream script(script_text);
    const auto result = hs::run_script(service, script);
    service.stop();
    session.close();
    return result;
  };

  const auto first = run_once();
  EXPECT_EQ(first.submitted, 7);
  EXPECT_EQ(first.admitted, 5);
  EXPECT_EQ(first.rejected, 2);
  EXPECT_EQ(first.completed, 5);
  EXPECT_EQ(first.failed, 0);
  EXPECT_NE(first.log.find("reason=client_quota"), std::string::npos);
  EXPECT_NE(first.log.find("reason=queue_full"), std::string::npos);

  // Same script, same policy, fresh service: byte-identical log.
  const auto second = run_once();
  EXPECT_EQ(first.log, second.log);
}

TEST(Service, PageRankWarmStartContinuesExactly) {
  const auto el = small_rmat(8, 8, 9);
  const hc::Grid grid(2, 2);

  // Oracle: 5 iterations in one shot on the same distribution.
  std::vector<double> cold;
  {
    hs::Session session(el, grid);
    session.run([&](hc::Dist2DGraph& g, hpcg::comm::Comm& comm) {
      const auto pr = ha::pagerank(g, 5);
      auto gathered = ha::gather_row_state(g, std::span<const double>(pr));
      if (comm.rank() == 0) cold = gathered;
    });
  }

  // Service: 2 cold iterations, then 3 more warm-started.
  hs::Session session(el, grid);
  hs::ServiceOptions vopts;
  vopts.auto_dispatch = false;
  hs::Service service(session, vopts);

  hs::Request step1;
  step1.algo = hs::Algo::kPageRank;
  step1.iterations = 2;
  auto t1 = service.submit(std::move(step1));
  hs::Request step2;
  step2.algo = hs::Algo::kPageRank;
  step2.iterations = 3;
  step2.warm_start = true;
  EXPECT_TRUE(service.cache_key(step2).empty());  // warm starts uncacheable
  auto t2 = service.submit(std::move(step2));
  service.drain();
  t1.result.get();
  const auto warm = t2.result.get();

  const auto& relabel = session.partition().relabel();
  ASSERT_EQ(warm.rank.size(), cold.size());
  for (Gid v = 0; v < el.n; ++v) {
    // Response is original-indexed, the oracle gather striped-indexed.
    EXPECT_EQ(warm.rank[static_cast<std::size_t>(v)],
              cold[static_cast<std::size_t>(relabel.to_new(v))])
        << "vertex " << v;
  }

  service.stop();
  session.close();
}

TEST(Service, ConnectedComponentsCountsMatchReference) {
  const auto el = small_rmat(8, 8, 11);
  hs::Session session(el, hc::Grid(2, 2));
  hs::Service service(session);  // auto dispatch

  hs::Request request;
  request.algo = hs::Algo::kCc;
  auto ticket = service.submit(std::move(request));
  const auto response = ticket.result.get();
  EXPECT_EQ(response.n_components, hpcg::graph::count_components(el));
  EXPECT_EQ(response.component.size(), static_cast<std::size_t>(el.n));
  // Labels are original vertex ids and every vertex agrees with its label's
  // label (representatives are fixed points).
  for (Gid v = 0; v < el.n; ++v) {
    const auto rep = response.component[static_cast<std::size_t>(v)];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, el.n);
    EXPECT_EQ(response.component[static_cast<std::size_t>(rep)], rep);
  }

  service.stop();
  session.close();
}

TEST(Service, LoadGeneratorDrivesConcurrentClients) {
  const auto el = small_rmat(8, 8, 13);
  hs::Session session(el, hc::Grid(2, 2));
  hs::ServiceOptions vopts;
  vopts.queue_capacity = 4;  // small queue to exercise Overloaded retries
  hs::Service service(session, vopts);

  hs::LoadGenOptions lopts;
  lopts.clients = 3;
  lopts.requests_per_client = 5;
  lopts.seed = 42;
  const auto stats = hs::run_load(service, session.n(), lopts);
  EXPECT_EQ(stats.completed, 15);
  EXPECT_EQ(stats.failed, 0);

  const auto snap = service.metrics().snapshot();
  const auto counter_or_zero = [&](const std::string& name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  // Cache hits complete without touching the executed-request counter.
  EXPECT_EQ(counter_or_zero("serve.requests.completed") +
                counter_or_zero("serve.cache.hits"),
            15u);
  EXPECT_TRUE(snap.histograms.contains("serve.latency.total_us"));

  service.stop();
  session.close();
}

TEST(HistogramQuantile, WalksPowerOfTwoBuckets) {
  const auto data = [] {
    ht::MetricsRegistry registry;
    auto& h = registry.histogram("x");
    for (int i = 0; i < 100; ++i) h.observe(100);  // bucket (64, 128]
    for (int i = 0; i < 10; ++i) h.observe(1000);  // bucket (512, 1024]
    return registry.snapshot().histograms.at("x");
  }();

  const auto p50 = ht::MetricsRegistry::histogram_quantile(data, 0.50);
  EXPECT_GT(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  const auto p99 = ht::MetricsRegistry::histogram_quantile(data, 0.99);
  EXPECT_GT(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // Monotone in q, exact edges clamp.
  EXPECT_LE(ht::MetricsRegistry::histogram_quantile(data, 0.0),
            ht::MetricsRegistry::histogram_quantile(data, 1.0));
  EXPECT_EQ(ht::MetricsRegistry::histogram_quantile({}, 0.5), 0.0);
}

TEST(MetricsExport, QuantilesAppearInJsonAndCsv) {
  ht::MetricsRegistry registry;
  auto& hist = registry.histogram("serve.latency.total_us");
  for (int i = 1; i <= 64; ++i) hist.observe(static_cast<std::uint64_t>(i * 100));
  const auto snap = registry.snapshot();
  const auto report = ht::analyze({}, 1);

  std::ostringstream json;
  ht::write_metrics_json(json, snap, report);
  EXPECT_NE(json.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p95\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p99\""), std::string::npos);

  std::ostringstream csv;
  ht::write_metrics_csv(csv, snap, report);
  EXPECT_NE(csv.str().find("histogram.serve.latency.total_us.p50"),
            std::string::npos);
  EXPECT_NE(csv.str().find("histogram.serve.latency.total_us.p99"),
            std::string::npos);
}

// Topology classification and collective cost algebra.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/topology.hpp"

namespace hc = hpcg::comm;

namespace {

TEST(Topology, AimosHierarchy) {
  const auto topo = hc::Topology::aimos(24);
  // Ranks 0-2 share an NVLink triplet; 0-5 share a node; 6 is next node.
  EXPECT_EQ(topo.link_class(0, 0), hc::LinkClass::kSelf);
  EXPECT_EQ(topo.link_class(0, 2), hc::LinkClass::kNvlink);
  EXPECT_EQ(topo.link_class(0, 3), hc::LinkClass::kIntraNode);
  EXPECT_EQ(topo.link_class(2, 5), hc::LinkClass::kIntraNode);
  EXPECT_EQ(topo.link_class(0, 6), hc::LinkClass::kNetwork);
  EXPECT_EQ(topo.link_class(5, 6), hc::LinkClass::kNetwork);
  EXPECT_EQ(topo.node_of(11), 1);
  EXPECT_EQ(topo.clique_of(11), 3);
  // The hierarchy is ordered: NVLink fastest, network slowest.
  EXPECT_GT(topo.params(hc::LinkClass::kNvlink).beta_bytes_s,
            topo.params(hc::LinkClass::kIntraNode).beta_bytes_s);
  EXPECT_GT(topo.params(hc::LinkClass::kIntraNode).beta_bytes_s,
            topo.params(hc::LinkClass::kNetwork).beta_bytes_s);
  EXPECT_LT(topo.params(hc::LinkClass::kNvlink).alpha_s,
            topo.params(hc::LinkClass::kNetwork).alpha_s);
}

TEST(Topology, ZepyIsOneNvlinkDomain) {
  const auto topo = hc::Topology::zepy(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) EXPECT_EQ(topo.link_class(a, b), hc::LinkClass::kNvlink);
    }
  }
}

TEST(Topology, AlphaScalePreservesBandwidth) {
  const auto base = hc::Topology::aimos(12);
  const auto scaled = base.with_alpha_scale(1e-3);
  for (const auto c : {hc::LinkClass::kNvlink, hc::LinkClass::kIntraNode,
                       hc::LinkClass::kNetwork}) {
    EXPECT_DOUBLE_EQ(scaled.params(c).alpha_s, base.params(c).alpha_s * 1e-3);
    EXPECT_DOUBLE_EQ(scaled.params(c).beta_bytes_s, base.params(c).beta_bytes_s);
  }
}

TEST(Topology, RejectsBadShapes) {
  EXPECT_THROW(hc::Topology(0, 1, 1, {}, {}, {}), std::invalid_argument);
  EXPECT_THROW(hc::Topology(4, 6, 4, {}, {}, {}), std::invalid_argument);
}

hc::GroupLink link_over(const hc::Topology& topo, std::vector<int> members) {
  return hc::make_group_link(topo, members.data(), static_cast<int>(members.size()));
}

TEST(GroupLink, BottleneckIsSlowestSpannedLink) {
  const auto topo = hc::Topology::aimos(24);
  // Within a triplet: NVLink speed.
  EXPECT_DOUBLE_EQ(link_over(topo, {0, 1, 2}).link.beta_bytes_s,
                   topo.params(hc::LinkClass::kNvlink).beta_bytes_s);
  // Within a node crossing triplets: host staged.
  EXPECT_DOUBLE_EQ(link_over(topo, {0, 1, 2, 3, 4, 5}).link.beta_bytes_s,
                   topo.params(hc::LinkClass::kIntraNode).beta_bytes_s);
  // Across nodes: network.
  EXPECT_DOUBLE_EQ(link_over(topo, {0, 6}).link.beta_bytes_s,
                   topo.params(hc::LinkClass::kNetwork).beta_bytes_s);
  EXPECT_EQ(link_over(topo, {5}).size, 1);
}

TEST(CostModel, SingleRankIsFree) {
  const hc::CostModel cost;
  const auto topo = hc::Topology::aimos(6);
  const auto link = link_over(topo, {3});
  EXPECT_DOUBLE_EQ(cost.allreduce(link, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(cost.broadcast(link, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(cost.allgather(link, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(cost.alltoallv(link, 1 << 20), 0.0);
}

TEST(CostModel, MonotoneInBytesAndGroupSize) {
  const hc::CostModel cost;
  const auto topo = hc::Topology::aimos(48);
  std::vector<int> all(48);
  std::iota(all.begin(), all.end(), 0);
  const auto small_group = hc::make_group_link(topo, all.data(), 8);
  const auto big_group = hc::make_group_link(topo, all.data(), 48);
  EXPECT_LT(cost.allreduce(small_group, 1 << 10), cost.allreduce(small_group, 1 << 20));
  EXPECT_LT(cost.allreduce(small_group, 1 << 20), cost.allreduce(big_group, 1 << 20));
  EXPECT_LT(cost.allgather(small_group, 1 << 16), cost.allgather(big_group, 1 << 16));
  // Personalized exchange latency scales linearly with the group, so for
  // small payloads it overtakes the logarithmic collectives.
  EXPECT_GT(cost.alltoallv(big_group, 64), cost.allreduce(big_group, 64));
}

TEST(CostModel, NvlinkGroupsBeatNetworkGroups) {
  const hc::CostModel cost;
  const auto topo = hc::Topology::aimos(12);
  const auto nvlink = link_over(topo, {0, 1, 2});
  std::vector<int> spread{0, 6, 9};  // three nodes
  const auto network = hc::make_group_link(topo, spread.data(), 3);
  EXPECT_LT(cost.allreduce(nvlink, 1 << 20), cost.allreduce(network, 1 << 20));
}

TEST(CostModel, GroupedCallOverlapsBroadcasts) {
  const hc::CostModel cost;
  const auto topo = hc::Topology::aimos(16);
  std::vector<int> members(16);
  std::iota(members.begin(), members.end(), 0);
  const auto link = hc::make_group_link(topo, members.data(), 16);
  const double one = cost.broadcast(link, 1 << 18);
  // Four grouped broadcasts cost far less than four sequential ones.
  EXPECT_LT(cost.grouped(one, 4), 4 * one);
  EXPECT_GE(cost.grouped(one, 4), one);
}

TEST(CostModel, SubstrateKnobsPenalize) {
  hc::CostParams generic;
  generic.software_alpha_s = 8e-6;
  generic.bw_derate = 0.6;
  const hc::CostModel tuned;
  const hc::CostModel gluonish(generic);
  const auto topo = hc::Topology::aimos(16);
  std::vector<int> members(16);
  std::iota(members.begin(), members.end(), 0);
  const auto link = hc::make_group_link(topo, members.data(), 16);
  EXPECT_GT(gluonish.alltoallv(link, 1 << 18), tuned.alltoallv(link, 1 << 18));
  EXPECT_GT(gluonish.allgather(link, 1 << 18), tuned.allgather(link, 1 << 18));
}

TEST(CostModel, WorkChargesAreLinear) {
  hc::CostParams params;
  params.per_edge_s = 2e-10;
  params.per_vertex_s = 5e-10;
  // Sanity on the figure benches' compute model: rates are per item.
  EXPECT_DOUBLE_EQ(1000 * params.per_edge_s, 2e-7);
  EXPECT_DOUBLE_EQ(1000 * params.per_vertex_s, 5e-7);
}

}  // namespace

// Dedicated dense-communication tests (Algorithm 2): custom combiners,
// the grouped-broadcast redistribution paths on non-square grids, and
// state-consistency invariants after arbitrary kernels.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <mutex>

#include "core/dense_comm.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;

namespace {

struct GridCase {
  int rows;
  int cols;
};

class DenseCommP : public ::testing::TestWithParam<GridCase> {};

/// After any dense exchange, every rank's value for a given GID must be
/// identical, whatever slot (row or column) it occupies.
template <class T>
void expect_globally_consistent(const hg::EdgeList& el, hc::Grid grid,
                                hc::Direction dir, hpcg::comm::ReduceOp op,
                                std::uint64_t seed) {
  std::mutex mutex;
  std::map<hg::Gid, T> seen;
  bool consistent = true;
  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    std::vector<T> state(static_cast<std::size_t>(lids.n_total()));
    hpcg::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(comm.rank()));
    for (auto& value : state) value = static_cast<T>(rng.next_below(1000));
    hc::dense_exchange(g, std::span(state), op, dir);
    std::lock_guard lock(mutex);
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      const auto gid = lids.to_gid(l);
      auto [it, inserted] = seen.try_emplace(gid, state[static_cast<std::size_t>(l)]);
      if (!inserted && it->second != state[static_cast<std::size_t>(l)]) {
        consistent = false;
      }
    }
  });
  EXPECT_TRUE(consistent);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(el.n));
}

TEST_P(DenseCommP, PushAndPullLeaveGloballyConsistentState) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 4, 1701);
  for (const auto dir : {hc::Direction::kPush, hc::Direction::kPull}) {
    expect_globally_consistent<std::int64_t>(el, hc::Grid(rows, cols), dir,
                                             hpcg::comm::ReduceOp::kMax, 11);
    expect_globally_consistent<std::int64_t>(el, hc::Grid(rows, cols), dir,
                                             hpcg::comm::ReduceOp::kMin, 13);
  }
}

TEST_P(DenseCommP, CustomCombinerMatchesBuiltin) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 4, 1703);
  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    const auto n_total = static_cast<std::size_t>(lids.n_total());
    std::vector<std::int64_t> builtin(n_total);
    std::vector<std::int64_t> custom(n_total);
    hpcg::util::Xoshiro256 rng(2000 + static_cast<std::uint64_t>(comm.rank()));
    for (std::size_t l = 0; l < n_total; ++l) {
      builtin[l] = custom[l] = static_cast<std::int64_t>(rng.next_below(5000));
    }
    hc::dense_exchange(g, std::span(builtin), hpcg::comm::ReduceOp::kMax,
                       hc::Direction::kPull);
    hc::dense_exchange(
        g, std::span(custom),
        [](std::int64_t& into, const std::int64_t& from) {
          into = std::max(into, from);
        },
        hc::Direction::kPull);
    EXPECT_EQ(builtin, custom);
  });
}

TEST_P(DenseCommP, SumPushCountsEveryContributionOnce) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 5, 1707);
  const auto striped = hpcg::test::striped_view(el, hc::Grid(rows, cols));
  // In-degree oracle (symmetrized, so equals degree).
  std::vector<std::int64_t> in_degree(static_cast<std::size_t>(el.n), 0);
  for (const auto& e : striped.edges) ++in_degree[static_cast<std::size_t>(e.v)];

  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    std::vector<std::int64_t> state(static_cast<std::size_t>(lids.n_total()), 0);
    const auto offsets = g.csr().offsets();
    const auto adj = g.csr().adjacencies();
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        ++state[static_cast<std::size_t>(adj[e])];
      }
    }
    hc::dense_exchange(g, std::span(state), hpcg::comm::ReduceOp::kSum,
                       hc::Direction::kPush);
    for (hc::Lid l = 0; l < lids.n_total(); ++l) {
      EXPECT_EQ(state[static_cast<std::size_t>(l)],
                in_degree[static_cast<std::size_t>(lids.to_gid(l))])
          << "lid " << l;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DenseCommP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{2, 5},
                      GridCase{5, 2}, GridCase{3, 3}, GridCase{1, 8},
                      GridCase{8, 1}, GridCase{3, 4}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols);
    });

TEST(LidMapFuzz, RandomRangesRoundTripAndClassify) {
  hpcg::util::Xoshiro256 rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    const auto row_offset = static_cast<hg::Gid>(rng.next_below(1000));
    const auto n_row = static_cast<hg::Gid>(rng.next_below(200));
    const auto col_offset = static_cast<hg::Gid>(rng.next_below(1000));
    const auto n_col = static_cast<hg::Gid>(rng.next_below(200));
    const hc::LidMap map(row_offset, n_row, col_offset, n_col);

    ASSERT_GE(map.type(), 0);
    ASSERT_LE(map.type(), 2);
    ASSERT_LE(map.n_total(), n_row + n_col);
    // Round trips over both ranges.
    for (hg::Gid g = row_offset; g < row_offset + n_row; ++g) {
      ASSERT_EQ(map.to_gid(map.row_lid(g)), g);
      ASSERT_TRUE(map.lid_is_row(map.row_lid(g)));
    }
    for (hg::Gid g = col_offset; g < col_offset + n_col; ++g) {
      ASSERT_EQ(map.to_gid(map.col_lid(g)), g);
      ASSERT_TRUE(map.lid_is_col(map.col_lid(g)));
    }
    // Overlap GIDs map to one LID; distinct GIDs map to distinct LIDs.
    std::set<hc::Lid> lids;
    std::set<hg::Gid> gids;
    for (hg::Gid g = row_offset; g < row_offset + n_row; ++g) gids.insert(g);
    for (hg::Gid g = col_offset; g < col_offset + n_col; ++g) gids.insert(g);
    for (const auto g : gids) lids.insert(map.to_lid(g));
    ASSERT_EQ(lids.size(), gids.size());
  }
}

}  // namespace

// Fault injection + checkpoint/restart: plan grammar, injector
// determinism, the guarantee that an empty plan is bit-identical to a
// fault-free run, typed comm errors (RankFailure / Timeout /
// CorruptPayload), and bit-identical recovery of BFS, PageRank and CC
// from injected mid-run crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/label_prop.hpp"
#include "algos/pagerank.hpp"
#include "comm/errors.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "fault/checkpoint.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::comm;
namespace hf = hpcg::fault;
namespace ht = hpcg::telemetry;

namespace {

/// Work-proportional cost model (same as test_telemetry.cpp): virtual
/// clocks become a pure function of the work performed, so faulted and
/// fault-free runs are exactly comparable.
hc::CostParams deterministic_params() {
  hc::CostParams params;
  params.compute_scale = 0.0;
  params.per_edge_s = 2e-10;
  params.per_vertex_s = 5e-10;
  return params;
}

hc::RunOptions with_faults(hf::FaultInjector* injector, double timeout_s = 0.0) {
  hc::RunOptions options;
  options.faults = injector;
  options.comm_timeout_s = timeout_s;
  return options;
}

// --- plan grammar ----------------------------------------------------------

TEST(FaultPlan, ParsesEveryKindAndParam) {
  const auto plan = hf::FaultPlan::parse(
      "crash@r2:s3, silent@r?:t0.5, transient@r1:n5:x2:b1e-4, corrupt@r0:p1, "
      "degrade@r3:n4:x10:f8",
      /*seed=*/17);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.seed, 17u);

  EXPECT_EQ(plan.specs[0].kind, hf::FaultKind::kCrash);
  EXPECT_EQ(plan.specs[0].rank, 2);
  EXPECT_EQ(plan.specs[0].superstep, 3);

  EXPECT_EQ(plan.specs[1].kind, hf::FaultKind::kSilent);
  EXPECT_EQ(plan.specs[1].rank, -1);  // r? resolved at injector build
  EXPECT_DOUBLE_EQ(plan.specs[1].vtime, 0.5);

  EXPECT_EQ(plan.specs[2].kind, hf::FaultKind::kTransient);
  EXPECT_EQ(plan.specs[2].collective, 5);
  EXPECT_EQ(plan.specs[2].count, 2);
  EXPECT_DOUBLE_EQ(plan.specs[2].backoff_s, 1e-4);

  EXPECT_EQ(plan.specs[3].kind, hf::FaultKind::kCorrupt);
  EXPECT_EQ(plan.specs[3].message, 1);

  EXPECT_EQ(plan.specs[4].kind, hf::FaultKind::kDegrade);
  EXPECT_EQ(plan.specs[4].collective, 4);
  EXPECT_EQ(plan.specs[4].count, 10);
  EXPECT_DOUBLE_EQ(plan.specs[4].factor, 8.0);

  EXPECT_TRUE(hf::FaultPlan::parse("").empty());
  EXPECT_TRUE(hf::FaultPlan::parse("  ").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(hf::FaultPlan::parse("boom@r0:s1"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("crash@x0:s1"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("crash@r0"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("crash@r0:s1:n2"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("crash@r0:p1"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("corrupt@r0:s1"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("transient@r0:n1:x0"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("degrade@r0:n1:f0"), std::invalid_argument);
  EXPECT_THROW(hf::FaultPlan::parse("crash@r0:sX"), std::invalid_argument);
}

TEST(FaultInjectorBuild, ResolvesRandomTargetDeterministically) {
  const auto plan = hf::FaultPlan::parse("crash@r?:s1", /*seed=*/99);
  hf::FaultInjector a(plan, 8);
  hf::FaultInjector b(plan, 8);
  ASSERT_EQ(a.resolved_specs().size(), 1u);
  const int rank = a.resolved_specs()[0].rank;
  EXPECT_GE(rank, 0);
  EXPECT_LT(rank, 8);
  EXPECT_EQ(rank, b.resolved_specs()[0].rank);

  // A different seed may pick a different rank but must stay in range.
  hf::FaultInjector c(hf::FaultPlan::parse("crash@r?:s1", 100), 8);
  EXPECT_GE(c.resolved_specs()[0].rank, 0);
  EXPECT_LT(c.resolved_specs()[0].rank, 8);

  EXPECT_THROW(hf::FaultInjector(hf::FaultPlan::parse("crash@r9:s1"), 4),
               std::invalid_argument);
}

// --- off-by-default guarantee ---------------------------------------------

TEST(FaultRegression, EmptyPlanIsBitIdenticalToFaultFreeRun) {
  const auto el = hpcg::test::small_rmat(7, 4, 901);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  const auto run = [&](hf::FaultInjector* injector) {
    return hc::Runtime::run(4, hc::Topology::aimos(4),
                            hc::CostModel(deterministic_params()),
                            with_faults(injector), [&](hc::Comm& comm) {
                              hpcg::core::Dist2DGraph g(comm, parts);
                              comm.reset_clocks();
                              hpcg::algos::pagerank(g, 5);
                            });
  };
  const auto baseline = run(nullptr);
  hf::FaultInjector empty_injector(hf::FaultPlan{}, 4);
  const auto faultless = run(&empty_injector);

  ASSERT_EQ(baseline.vclock.size(), faultless.vclock.size());
  for (std::size_t r = 0; r < baseline.vclock.size(); ++r) {
    EXPECT_EQ(baseline.vclock[r], faultless.vclock[r]) << "rank " << r;
    EXPECT_EQ(baseline.comp_s[r], faultless.comp_s[r]) << "rank " << r;
    EXPECT_EQ(baseline.comm_s[r], faultless.comm_s[r]) << "rank " << r;
  }
  EXPECT_EQ(baseline.bytes, faultless.bytes);
  EXPECT_EQ(baseline.messages, faultless.messages);
  EXPECT_EQ(baseline.collectives, faultless.collectives);
  EXPECT_EQ(baseline.makespan(), faultless.makespan());
  EXPECT_TRUE(empty_injector.events().empty());
}

// --- determinism of the schedule ------------------------------------------

TEST(FaultDeterminism, SameSeedSameFaultSequence) {
  const auto el = hpcg::test::small_rmat(7, 4, 901);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  const auto events_of = [&]() {
    hf::FaultInjector injector(
        hf::FaultPlan::parse("transient@r1:n6:x2,crash@r?:s3", 11), 4);
    EXPECT_THROW(
        hc::Runtime::run(4, hc::Topology::aimos(4),
                         hc::CostModel(deterministic_params()),
                         with_faults(&injector),
                         [&](hc::Comm& comm) {
                           hpcg::core::Dist2DGraph g(comm, parts);
                           comm.reset_clocks();
                           hpcg::algos::pagerank(g, 8);
                         }),
        hc::RankFailure);
    return injector.events();
  };
  const auto a = events_of();
  const auto b = events_of();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << i;
    EXPECT_EQ(a[i].collective_seq, b[i].collective_seq) << i;
    EXPECT_EQ(a[i].p2p_seq, b[i].p2p_seq) << i;
    EXPECT_EQ(a[i].superstep, b[i].superstep) << i;
    EXPECT_EQ(a[i].vtime, b[i].vtime) << i;
  }
}

// --- typed error surface ---------------------------------------------------

TEST(FaultErrors, CrashSurfacesAsRankFailure) {
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:n2"), 4);
  EXPECT_THROW(hc::Runtime::run(4, hc::Topology::flat(4),
                                hc::CostModel(deterministic_params()),
                                with_faults(&injector),
                                [](hc::Comm& comm) {
                                  std::vector<double> x(64, 1.0);
                                  for (int i = 0; i < 6; ++i) {
                                    comm.allreduce(std::span(x), hc::ReduceOp::kSum);
                                  }
                                }),
               hc::RankFailure);
  EXPECT_EQ(injector.fired(hf::FaultKind::kCrash), 1u);
  // RankFailure is a CommError is a runtime_error.
  static_assert(std::is_base_of_v<hc::CommError, hc::RankFailure>);
  static_assert(std::is_base_of_v<std::runtime_error, hc::CommError>);
}

TEST(FaultErrors, SilentDeathSurfacesAsTimeoutWithinDeadline) {
  hf::FaultInjector injector(hf::FaultPlan::parse("silent@r1:s1"), 4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      hc::Runtime::run(4, hc::Topology::flat(4),
                       hc::CostModel(deterministic_params()),
                       with_faults(&injector, /*timeout_s=*/0.3),
                       [](hc::Comm& comm) {
                         for (int step = 0; step < 4; ++step) {
                           auto span = comm.superstep_span("loop");
                           comm.barrier();
                         }
                       }),
      hc::Timeout);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 8.0) << "survivors must not hang on a silent death";
  EXPECT_EQ(injector.fired(hf::FaultKind::kSilent), 1u);
}

TEST(FaultErrors, SilentPlanEnablesDefaultDeadline) {
  hf::FaultInjector injector(hf::FaultPlan::parse("silent@r0:s1"), 2);
  EXPECT_TRUE(injector.wants_deadline());
  hf::FaultInjector no_silent(hf::FaultPlan::parse("crash@r0:s1"), 2);
  EXPECT_FALSE(no_silent.wants_deadline());
}

TEST(FaultErrors, RecvDeadlineSurfacesAsTimeout) {
  // No faults at all: a peer that simply never sends must still surface as
  // a Timeout once a deadline is configured, instead of hanging forever.
  EXPECT_THROW(hc::Runtime::run(2, hc::Topology::flat(2),
                                hc::CostModel(deterministic_params()),
                                with_faults(nullptr, /*timeout_s=*/0.2),
                                [](hc::Comm& comm) {
                                  if (comm.rank() == 0) {
                                    comm.recv<int>(1, /*tag=*/7);
                                  }
                                }),
               hc::Timeout);
}

TEST(FaultErrors, CorruptedPayloadDetectedOnRecv) {
  hf::FaultInjector injector(hf::FaultPlan::parse("corrupt@r0:p0"), 2);
  EXPECT_THROW(
      hc::Runtime::run(2, hc::Topology::flat(2),
                       hc::CostModel(deterministic_params()),
                       with_faults(&injector),
                       [](hc::Comm& comm) {
                         std::vector<std::int64_t> data(32, 41);
                         if (comm.rank() == 0) {
                           comm.send(std::span<const std::int64_t>(data), 1, 3);
                         } else {
                           comm.recv<std::int64_t>(0, 3);
                         }
                       }),
      hc::CorruptPayload);
  EXPECT_EQ(injector.fired(hf::FaultKind::kCorrupt), 1u);
}

// --- transient faults and degradation -------------------------------------

TEST(FaultTransient, RetriedWithBackoffAndCompletes) {
  const auto run = [](hf::FaultInjector* injector) {
    return hc::Runtime::run(4, hc::Topology::flat(4),
                            hc::CostModel(deterministic_params()),
                            with_faults(injector), [](hc::Comm& comm) {
                              std::vector<double> x(64, 1.0);
                              for (int i = 0; i < 6; ++i) {
                                comm.allreduce(std::span(x), hc::ReduceOp::kSum);
                              }
                            });
  };
  const auto baseline = run(nullptr);
  hf::FaultInjector injector(hf::FaultPlan::parse("transient@r1:n2:x2"), 4);
  const auto faulted = run(&injector);

  EXPECT_EQ(injector.fired(hf::FaultKind::kTransient), 1u);
  // The retries charge virtual backoff to rank 1, so the modeled makespan
  // grows while traffic counters stay identical (same payloads moved).
  EXPECT_GT(faulted.makespan(), baseline.makespan());
  EXPECT_EQ(faulted.bytes, baseline.bytes);
  EXPECT_EQ(faulted.collectives, baseline.collectives);
  const auto events = injector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].collective_seq, 2);
}

TEST(FaultTransient, OverRetryBudgetEscalatesToCrash) {
  hf::FaultInjector injector(
      hf::FaultPlan::parse("transient@r0:n1:x" +
                           std::to_string(hf::kMaxTransientRetries + 1)),
      2);
  EXPECT_THROW(hc::Runtime::run(2, hc::Topology::flat(2),
                                hc::CostModel(deterministic_params()),
                                with_faults(&injector),
                                [](hc::Comm& comm) {
                                  for (int i = 0; i < 4; ++i) comm.barrier();
                                }),
               hc::RankFailure);
}

TEST(FaultDegrade, WindowRaisesModeledCostThenExpires) {
  const auto run = [](hf::FaultInjector* injector) {
    return hc::Runtime::run(4, hc::Topology::flat(4),
                            hc::CostModel(deterministic_params()),
                            with_faults(injector), [](hc::Comm& comm) {
                              std::vector<double> x(4096, 1.0);
                              for (int i = 0; i < 8; ++i) {
                                comm.allreduce(std::span(x), hc::ReduceOp::kSum);
                              }
                            });
  };
  const auto baseline = run(nullptr);
  hf::FaultInjector injector(hf::FaultPlan::parse("degrade@r2:n3:x2:f16"), 4);
  const auto degraded = run(&injector);

  EXPECT_EQ(injector.fired(hf::FaultKind::kDegrade), 1u);
  EXPECT_GT(degraded.makespan(), baseline.makespan());
  EXPECT_EQ(degraded.bytes, baseline.bytes);
  EXPECT_EQ(degraded.collectives, baseline.collectives);
}

// --- checkpoint primitives -------------------------------------------------

TEST(CheckpointBlob, RoundTripAndTruncation) {
  hf::BlobWriter writer;
  writer.put<std::int64_t>(-7);
  writer.put<double>(2.5);
  writer.put<std::uint8_t>(1);
  writer.put_vec(std::vector<std::int32_t>{3, 1, 4, 1, 5});
  writer.put_vec(std::vector<double>{});
  const auto blob = writer.take();

  hf::BlobReader reader(blob);
  EXPECT_EQ(reader.get<std::int64_t>(), -7);
  EXPECT_DOUBLE_EQ(reader.get<double>(), 2.5);
  EXPECT_EQ(reader.get<std::uint8_t>(), 1);
  EXPECT_EQ(reader.get_vec<std::int32_t>(),
            (std::vector<std::int32_t>{3, 1, 4, 1, 5}));
  EXPECT_TRUE(reader.get_vec<double>().empty());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_THROW(reader.get<std::int64_t>(), std::out_of_range);
}

TEST(CheckpointStore, CommitProtocolAndPruning) {
  EXPECT_THROW(hf::CheckpointStore(0), std::invalid_argument);

  hf::CheckpointStore store(2);
  EXPECT_EQ(store.latest_committed(), -1);

  hf::BlobWriter w0;
  w0.put<std::int64_t>(10);
  store.write(2, 0, w0.take());
  // Commit requires every rank to have written the epoch.
  EXPECT_THROW(store.commit(2), std::logic_error);
  EXPECT_THROW(store.commit(99), std::logic_error);
  // Reading an uncommitted epoch is rejected.
  EXPECT_THROW(store.blob(2, 0), std::logic_error);

  store.write(2, 1, {});  // a legitimately empty blob still counts
  store.commit(2);
  EXPECT_EQ(store.latest_committed(), 2);
  EXPECT_EQ(store.commits(), 1);
  const auto blob0 = store.blob(2, 0);
  hf::BlobReader r(blob0);
  EXPECT_EQ(r.get<std::int64_t>(), 10);
  EXPECT_TRUE(store.blob(2, 1).empty());

  EXPECT_THROW(store.write(2, 0, {}), std::logic_error);       // not past commit
  EXPECT_THROW(store.write(4, 5, {}), std::invalid_argument);  // bad rank

  store.write(4, 0, {});
  store.write(4, 1, {});
  store.commit(4);
  EXPECT_EQ(store.latest_committed(), 4);
  // Older epochs are pruned on commit.
  EXPECT_THROW(store.blob(2, 0), std::logic_error);
}

TEST(CheckpointHandle, InertByDefault) {
  hf::Checkpointer inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.resume_epoch(), -1);
  EXPECT_FALSE(inert.due(0));
  EXPECT_FALSE(inert.due(4));

  hf::CheckpointStore store(1);
  hf::Checkpointer every2(&store, 2);
  EXPECT_TRUE(every2.due(0));
  EXPECT_FALSE(every2.due(1));
  EXPECT_TRUE(every2.due(2));
  EXPECT_FALSE(every2.due(3));
}

// --- crash + recovery: bit-identical results -------------------------------

/// Per-rank LID-local output of one checkpointed algorithm run. A recovery
/// run checkpoints a single algorithm invocation (epochs are its superstep
/// indices), so each algorithm gets its own run + store here.
template <class T>
using PerRank = std::vector<std::vector<T>>;

/// Runs `body(comm, g, ckpt)` under `faults` with per-superstep
/// checkpointing on a fixed 2x2 grid and scale-8 RMAT.
hf::RecoveryResult run_recovered(
    const std::string& faults,
    const std::function<void(hc::Comm&, hpcg::core::Dist2DGraph&,
                             hf::Checkpointer&)>& body) {
  static const auto el = hpcg::test::small_rmat(8, 6, 907);
  static const auto parts =
      hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  hf::FaultInjector injector(hf::FaultPlan::parse(faults, /*seed=*/5), 4);
  hf::RecoveryOptions options;
  options.injector = faults.empty() ? nullptr : &injector;
  options.checkpoint_every = 1;
  const auto recovery = hf::Runtime::run_with_recovery(
      4, hc::Topology::aimos(4), hc::CostModel(deterministic_params()), options,
      [&](hc::Comm& comm, hf::Checkpointer& ckpt) {
        hpcg::core::Dist2DGraph g(comm, parts);
        comm.reset_clocks();
        body(comm, g, ckpt);
      });
  if (!faults.empty()) {
    EXPECT_GT(recovery.checkpoints_committed, 0);
    EXPECT_GT(recovery.checkpoint_bytes, 0u);
    EXPECT_FALSE(recovery.resume_epochs.empty());
  }
  return recovery;
}

TEST(FaultRecovery, CrashedBfsRecoversBitIdentical) {
  const auto run = [](const std::string& faults, int* restarts) {
    PerRank<std::int64_t> level(4);
    std::vector<std::int64_t> depth(4, 0);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          auto result = hpcg::algos::bfs(g, 0, {}, &ckpt);
          level[comm.rank()] = result.level;
          depth[comm.rank()] = result.depth;
        });
    if (restarts) *restarts = recovery.restarts;
    return std::pair{level, depth};
  };
  const auto clean = run("", nullptr);
  int restarts = 0;
  const auto faulted = run("crash@r2:s2", &restarts);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(clean.first, faulted.first);
  EXPECT_EQ(clean.second, faulted.second);
}

TEST(FaultRecovery, CrashedPagerankRecoversBitIdentical) {
  const auto run = [](const std::string& faults, int* restarts) {
    PerRank<double> pr(4);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          pr[comm.rank()] = hpcg::algos::pagerank(g, 6, 0.85, {}, &ckpt);
        });
    if (restarts) *restarts = recovery.restarts;
    return pr;
  };
  const auto clean = run("", nullptr);
  int restarts = 0;
  const auto faulted = run("crash@r1:s3", &restarts);
  EXPECT_EQ(restarts, 1);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(clean[r].size(), faulted[r].size()) << "rank " << r;
    for (std::size_t l = 0; l < clean[r].size(); ++l) {
      EXPECT_EQ(clean[r][l], faulted[r][l]) << "pr bit-exact, rank " << r;
    }
  }
}

TEST(FaultRecovery, CrashedCcRecoversBitIdentical) {
  const auto run = [](const std::string& faults, int* restarts) {
    PerRank<hpcg::graph::Gid> label(4);
    std::vector<int> iterations(4, 0);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          auto result = hpcg::algos::connected_components(
              g, hpcg::algos::CcOptions::sp_sw_vq(), &ckpt);
          label[comm.rank()] = result.label;
          iterations[comm.rank()] = result.iterations;
        });
    if (restarts) *restarts = recovery.restarts;
    return std::pair{label, iterations};
  };
  const auto clean = run("", nullptr);
  int restarts = 0;
  const auto faulted = run("crash@r3:s2", &restarts);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(clean.first, faulted.first);
  EXPECT_EQ(clean.second, faulted.second);
}

TEST(FaultRecovery, CrashedLabelPropRecoversBitIdentical) {
  const auto run = [](const std::string& faults, hf::RecoveryResult* out) {
    PerRank<std::uint64_t> label(4);
    std::vector<std::int64_t> updates(4, 0);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          auto result = hpcg::algos::label_propagation(g, 6, {}, &ckpt);
          label[comm.rank()] = result.label;
          updates[comm.rank()] = result.total_updates;
        });
    if (out) *out = recovery;
    return std::pair{label, updates};
  };
  const auto clean = run("", nullptr);
  hf::RecoveryResult recovery;
  const auto faulted = run("crash@r2:s3", &recovery);
  EXPECT_EQ(recovery.restarts, 1);
  // The restart must resume from a committed epoch, not replay from
  // iteration 0 — the LP save/restore hooks are actually wired.
  ASSERT_EQ(recovery.resume_epochs.size(), 1u);
  EXPECT_GE(recovery.resume_epochs[0], 0);
  EXPECT_GT(recovery.checkpoints_committed, 0);
  EXPECT_EQ(clean.first, faulted.first);
  EXPECT_EQ(clean.second, faulted.second);
}

TEST(FaultRecovery, SilentDeathRecoversBitIdentical) {
  const auto run = [](const std::string& faults, int* restarts) {
    PerRank<double> pr(4);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          pr[comm.rank()] = hpcg::algos::pagerank(g, 6, 0.85, {}, &ckpt);
        });
    if (restarts) *restarts = recovery.restarts;
    return pr;
  };
  const auto clean = run("", nullptr);
  int restarts = 0;
  const auto faulted = run("silent@r3:s3", &restarts);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(clean, faulted);
}

TEST(FaultRecovery, MultipleCrashesRecoverWithinBudget) {
  const auto run = [](const std::string& faults, int* restarts) {
    PerRank<double> pr(4);
    const auto recovery = run_recovered(
        faults, [&](hc::Comm& comm, hpcg::core::Dist2DGraph& g,
                    hf::Checkpointer& ckpt) {
          pr[comm.rank()] = hpcg::algos::pagerank(g, 6, 0.85, {}, &ckpt);
        });
    if (restarts) *restarts = recovery.restarts;
    return pr;
  };
  const auto clean = run("", nullptr);
  int restarts = 0;
  const auto faulted = run("crash@r0:s1,crash@r3:s4", &restarts);
  EXPECT_EQ(restarts, 2);
  EXPECT_EQ(clean, faulted);
}

TEST(FaultRecovery, ExhaustedRestartsRethrow) {
  hf::FaultInjector injector(
      hf::FaultPlan::parse("crash@r0:s1,crash@r0:s1,crash@r0:s1"), 2);
  hf::RecoveryOptions options;
  options.injector = &injector;
  options.checkpoint_every = 0;  // no checkpoints: every attempt replays
  options.max_restarts = 1;
  EXPECT_THROW(hf::Runtime::run_with_recovery(
                   2, hc::Topology::flat(2),
                   hc::CostModel(deterministic_params()), options,
                   [](hc::Comm& comm, hf::Checkpointer&) {
                     for (int step = 0; step < 3; ++step) {
                       auto span = comm.superstep_span("loop");
                       comm.barrier();
                     }
                   }),
               hc::RankFailure);
  EXPECT_EQ(injector.runs_started(), 2);
}

TEST(FaultRecovery, ProgrammingErrorsAreNotRetried) {
  hf::RecoveryOptions options;
  options.checkpoint_every = 1;
  std::atomic<int> attempts{0};
  EXPECT_THROW(hf::Runtime::run_with_recovery(
                   2, hc::Topology::flat(2),
                   hc::CostModel(deterministic_params()), options,
                   [&](hc::Comm& comm, hf::Checkpointer&) {
                     if (comm.rank() == 0) ++attempts;
                     throw std::logic_error("bug");
                   }),
               std::logic_error);
  EXPECT_EQ(attempts.load(), 1);
}

// --- telemetry surface -----------------------------------------------------

TEST(FaultTelemetry, InstantsAndCountersSurviveRecovery) {
  const auto el = hpcg::test::small_rmat(7, 4, 901);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  ht::Recorder recorder(4);
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:s2"), 4);
  hf::RecoveryOptions options;
  options.recorder = &recorder;
  options.injector = &injector;
  options.checkpoint_every = 1;
  const auto recovery = hf::Runtime::run_with_recovery(
      4, hc::Topology::aimos(4), hc::CostModel(deterministic_params()), options,
      [&](hc::Comm& comm, hf::Checkpointer& ckpt) {
        hpcg::core::Dist2DGraph g(comm, parts);
        comm.reset_clocks();
        hpcg::algos::pagerank(g, 6, 0.85, {}, &ckpt);
      });
  EXPECT_EQ(recovery.restarts, 1);

  // The crash instant was recorded during the failed attempt (whose spans
  // are wiped by the retry's reset) and must be re-recorded by the driver;
  // the restore instants come from the successful attempt itself.
  std::multiset<std::string> instant_names;
  for (const auto& span : recorder.spans()) {
    if (span.kind == ht::SpanKind::kInstant) instant_names.insert(span.name);
  }
  EXPECT_EQ(instant_names.count("crash"), 1u);
  EXPECT_EQ(instant_names.count("recovery.restore"), 4u);  // one per rank

  // analyze() rolls instants into the report.
  const auto report = ht::analyze(recorder.spans(), recorder.nranks());
  bool saw_crash = false;
  for (const auto& instant : report.instants) {
    if (instant.name == "crash") {
      saw_crash = true;
      EXPECT_EQ(instant.count, 1);
    }
  }
  EXPECT_TRUE(saw_crash);

  const auto snap = recorder.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("faults.injected.crash"), 1u);
  EXPECT_EQ(snap.counters.at("faults.recovery.restarts"), 1u);
  EXPECT_EQ(snap.counters.at("faults.recovery.restore"), 4u);
  EXPECT_GT(snap.counters.at("checkpoint.commits"), 0u);
  EXPECT_GT(snap.counters.at("checkpoint.bytes"), 0u);
}

}  // namespace

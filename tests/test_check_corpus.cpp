// Replays the pinned corpus of fuzzer-found reproducers against the
// fixed engine, plus unit regressions for the satellite bugs the sweep
// flushed out: the cache-key grammar collisions and the CLI's
// uncaught-exception exit on malformed numeric flags.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzzer.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "test_helpers.hpp"
#include "util/options.hpp"

#ifndef CHECK_CORPUS_PATH
#define CHECK_CORPUS_PATH "tests/corpus/check.corpus"
#endif

namespace hpcg {
namespace {

TEST(CheckCorpus, EveryPinnedReproducerPassesOnTheFixedEngine) {
  const auto configs = check::read_corpus(CHECK_CORPUS_PATH);
  ASSERT_GE(configs.size(), 5u);
  check::FuzzOptions opts;
  opts.with_identity = true;
  opts.shrink_failures = false;
  const auto result = check::replay(configs, opts);
  EXPECT_EQ(result.ran, static_cast<int>(configs.size()));
  for (const auto& report : result.reports) {
    ADD_FAILURE() << report.config.to_string() << " -> ["
                  << report.failures.front().oracle << "] "
                  << report.failures.front().detail;
  }
}

TEST(CheckCorpus, CorpusFileRejectsGarbageEntries) {
  EXPECT_THROW(check::read_corpus("/nonexistent/check.corpus"),
               std::runtime_error);
}

// --- cache-key grammar regressions (src/serve/cache.hpp) -----------------

class CacheKeyTest : public ::testing::Test {
 protected:
  CacheKeyTest()
      : el_(test::small_rmat(6, 8, 3)), session_(el_, core::Grid(1, 1)) {}

  serve::Service make_service(const std::string& graph_key) {
    serve::ServiceOptions opts;
    opts.auto_dispatch = false;
    opts.graph_key = graph_key;
    return serve::Service(session_, opts);
  }

  graph::EdgeList el_;
  serve::Session session_;
};

TEST_F(CacheKeyTest, FieldsAreLengthPrefixed) {
  auto service = make_service("g");
  serve::Request req;
  req.algo = serve::Algo::kBfs;
  req.roots = {3};
  // Grammar documented in cache.hpp: DECIMAL-LENGTH ':' BYTES per field,
  // with the graph epoch folded into the graph field (docs/STREAMING.md).
  EXPECT_EQ(service.cache_key(req), "4:g@e0|3:bfs|6:root=3");
}

TEST_F(CacheKeyTest, PipeInGraphKeyCannotForgeAnotherRequest) {
  // Pre-fix, graph_key "g|bfs" + algo "cc" could collide with graph_key
  // "g" + a crafted algo/params split, because fields were raw-joined
  // with '|'. Length prefixes make the parse unambiguous.
  auto forged = make_service("g|3:bfs");
  auto plain = make_service("g");
  serve::Request cc;
  cc.algo = serve::Algo::kCc;
  serve::Request bfs;
  bfs.algo = serve::Algo::kBfs;
  bfs.roots = {0};
  EXPECT_NE(forged.cache_key(cc), plain.cache_key(bfs));
  EXPECT_EQ(forged.cache_key(cc), "10:g|3:bfs@e0|2:cc|0:");
}

TEST_F(CacheKeyTest, DampingPrecisionSurvivesTheKey) {
  // Pre-fix, default ostream precision (6 significant digits) folded
  // 0.85 and 0.85000001 into the same cached entry.
  auto service = make_service("g");
  serve::Request a;
  a.algo = serve::Algo::kPageRank;
  a.iterations = 10;
  a.damping = 0.85;
  serve::Request b = a;
  b.damping = 0.85000001;
  EXPECT_NE(service.cache_key(a), service.cache_key(b));
  serve::Request c = a;
  EXPECT_EQ(service.cache_key(a), service.cache_key(c));
}

TEST_F(CacheKeyTest, WarmStartsStayUncacheable) {
  auto service = make_service("g");
  serve::Request req;
  req.algo = serve::Algo::kPageRank;
  req.warm_start = true;
  EXPECT_EQ(service.cache_key(req), "");
}

// --- malformed numeric flag regressions (src/util/options.hpp) -----------

class OptionsDeathTest : public ::testing::Test {
 protected:
  // The cache-key fixtures above spawn (and join) session threads in this
  // binary; re-exec-style death tests stay immune to leftover state.
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

int run_options_get_int(const std::string& arg) {
  std::string prog = "tool";
  std::string a = arg;
  char* argv[] = {prog.data(), a.data()};
  util::Options options(2, argv);
  return static_cast<int>(options.get_int("iters", 20));
}

TEST_F(OptionsDeathTest, MalformedIntExitsWithUsageNotAnException) {
  // Pre-fix these escaped as uncaught std::invalid_argument / terminate.
  EXPECT_EXIT(run_options_get_int("--iters=abc"),
              ::testing::ExitedWithCode(2), "invalid numeric value for --iters");
  EXPECT_EXIT(run_options_get_int("--iters="), ::testing::ExitedWithCode(2),
              "invalid numeric value");
  EXPECT_EXIT(run_options_get_int("--iters=12junk"),
              ::testing::ExitedWithCode(2), "invalid numeric value");
  EXPECT_EQ(run_options_get_int("--iters=12"), 12);
}

TEST_F(OptionsDeathTest, MalformedDoubleExitsWithUsage) {
  std::string prog = "tool";
  std::string a = "--damping=0.8x";
  char* argv[] = {prog.data(), a.data()};
  util::Options options(2, argv);
  EXPECT_EXIT(options.get_double("damping", 0.85),
              ::testing::ExitedWithCode(2), "invalid numeric value");
}

TEST_F(OptionsDeathTest, MalformedIntListExitsWithUsage) {
  std::string prog = "tool";
  std::string a = "--ranks=1,two,3";
  char* argv[] = {prog.data(), a.data()};
  util::Options options(2, argv);
  EXPECT_EXIT(options.get_int_list("ranks", {}),
              ::testing::ExitedWithCode(2), "invalid numeric value");
}

}  // namespace
}  // namespace hpcg

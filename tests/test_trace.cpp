// Communication tracing: per-collective event stream correctness.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "algos/pagerank.hpp"
#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::comm;

namespace {

TEST(Trace, RecordsOpsInVirtualTimeOrderPerGroup) {
  hc::CostParams params;
  params.trace = true;
  auto stats = hc::Runtime::run(
      4, hc::Topology::flat(4), hc::CostModel(params), hc::RunOptions{},
      [](hc::Comm& comm) {
        std::vector<double> x(128, comm.rank());
        comm.allreduce(std::span(x), hc::ReduceOp::kSum);
        comm.broadcast(std::span(x), 1);
        auto gathered = comm.allgatherv(std::span<const double>(x));
        comm.barrier();
      });
  ASSERT_EQ(stats.trace.size(), 4u);
  EXPECT_STREQ(stats.trace[0].op_name(), "allreduce");
  EXPECT_STREQ(stats.trace[1].op_name(), "broadcast");
  EXPECT_STREQ(stats.trace[2].op_name(), "allgatherv");
  EXPECT_STREQ(stats.trace[3].op_name(), "barrier");
  double last = 0.0;
  for (const auto& event : stats.trace) {
    EXPECT_EQ(event.group_size, 4);
    EXPECT_GT(event.cost, 0.0);
    EXPECT_GE(event.end_time, last);  // one group: strictly ordered
    last = event.end_time;
  }
}

TEST(Trace, OffByDefault) {
  auto stats = hc::Runtime::run(4, hc::Topology::aimos(4), hc::CostModel{},
                                hc::RunOptions{},
                                [](hc::Comm& comm) { comm.barrier(); });
  EXPECT_TRUE(stats.trace.empty());
}

TEST(Trace, DissectsAnAlgorithmsCommPattern) {
  const auto el = hpcg::test::small_rmat(7, 4, 1601);
  const auto parts = hpcg::core::Partitioned2D::build(el, hpcg::core::Grid(2, 2));
  hc::CostParams params;
  params.trace = true;
  auto stats = hc::Runtime::run(
      4, hc::Topology::aimos(4), hc::CostModel(params), hc::RunOptions{},
      [&](hc::Comm& comm) {
        hpcg::core::Dist2DGraph g(comm, parts);
        comm.reset_clocks();
        hpcg::algos::pagerank(g, 5);
      });
  std::map<std::string, int> per_op;
  for (const auto& event : stats.trace) ++per_op[event.op_name()];
  // Dense pull PageRank: one allreduce + one broadcast per iteration per
  // row/column group pair, plus the degree-state exchange (iterations+1
  // of each, and two group instances at 2x2 — leaders of both row groups
  // record the allreduce, both column groups the broadcast).
  EXPECT_EQ(per_op["allreduce"], (5 + 1) * 2);
  EXPECT_EQ(per_op["broadcast"], (5 + 1) * 2);
  EXPECT_EQ(per_op.count("alltoallv"), 0u);  // dense PR never personalizes
}

TEST(Trace, ResetClearsEvents) {
  hc::CostParams params;
  params.trace = true;
  auto stats = hc::Runtime::run(2, hc::Topology::flat(2), hc::CostModel(params),
                                hc::RunOptions{}, [](hc::Comm& comm) {
                                  comm.barrier();
                                  comm.reset_clocks();
                                  comm.barrier();
                                  comm.barrier();
                                });
  ASSERT_EQ(stats.trace.size(), 2u);
}

}  // namespace

// The autotuner contract (docs/TUNING.md):
//   - the microbench sweep + least-squares fitter recover the configured
//     substrate constants (alpha, beta, software_alpha) per topology level
//     to within 1% (in practice: roundoff),
//   - degenerate sweeps raise typed FitError, never NaN constants,
//   - calibration.json round-trips exactly and rejects corrupt input with
//     typed CalibrationError,
//   - the adaptive policy is never costlier than the fixed default, wins
//     strictly on the small-message corner, and NEVER changes results —
//     only modeled time (the bit-identity invariant),
//   - the derived async chunk count activates only when no explicit chunk
//     was configured, and sender-side coalescing preserves payloads while
//     reducing wire messages.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "comm/coalesce.hpp"
#include "comm/comm.hpp"
#include "comm/policy.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "tune/calibration.hpp"
#include "tune/fit.hpp"
#include "tune/sweep.hpp"

namespace hc = hpcg::comm;
namespace ht = hpcg::tune;

namespace {

// A custom machine so the fit cannot accidentally match aimos defaults:
// 12 ranks, 4 per node, NVLink pairs, distinct constants per level, and a
// bandwidth derate the fit must absorb into its effective beta.
hc::Topology test_topology() {
  return hc::Topology(12, 4, 2, hc::LinkParams{2e-6, 80e9},
                      hc::LinkParams{9e-6, 30e9}, hc::LinkParams{30e-6, 8e9});
}

hc::CostParams test_cost() {
  hc::CostParams cost;
  cost.software_alpha_s = 0.7e-6;
  cost.bw_derate = 0.8;
  return cost;
}

double rel_err(double got, double want) {
  return std::abs(got - want) / std::abs(want);
}

}  // namespace

TEST(TuneFit, SweepRecoversConfiguredConstantsWithinOnePercent) {
  const auto topo = test_topology();
  const auto cost = test_cost();
  ht::SweepOptions opts;
  opts.topo = topo;
  opts.cost = cost;
  const auto sweep = ht::run_sweep(opts);
  ASSERT_FALSE(sweep.empty());
  const auto fit = ht::fit_sweep(sweep);

  for (const hc::LinkClass cls :
       {hc::LinkClass::kNvlink, hc::LinkClass::kIntraNode,
        hc::LinkClass::kNetwork}) {
    const auto& lvl = fit.level[static_cast<std::size_t>(cls)];
    ASSERT_TRUE(lvl.valid) << hc::to_string(cls);
    const auto& want = topo.params(cls);
    EXPECT_LT(rel_err(lvl.alpha_s, want.alpha_s), 0.01) << hc::to_string(cls);
    EXPECT_LT(rel_err(lvl.beta_bytes_s, want.beta_bytes_s * cost.bw_derate),
              0.01)
        << hc::to_string(cls);
    EXPECT_LT(rel_err(lvl.software_alpha_s, cost.software_alpha_s), 0.01)
        << hc::to_string(cls);
    EXPECT_LT(lvl.max_rel_error, 0.01) << hc::to_string(cls);
    EXPECT_GT(lvl.samples, 0);
  }
  EXPECT_FALSE(fit.level[static_cast<std::size_t>(hc::LinkClass::kSelf)].valid);
}

TEST(TuneFit, SingleMessageSizeIsTypedError) {
  ht::SweepOptions opts;
  opts.topo = test_topology();
  opts.sizes = {4096};  // one size: latency and bandwidth are inseparable
  const auto sweep = ht::run_sweep(opts);
  EXPECT_THROW(ht::fit_sweep(sweep), ht::FitError);
}

TEST(TuneFit, ConstantLatencySweepIsTypedErrorNotNan) {
  // Synthetic samples whose duration ignores the message size: the fit
  // would need 1/beta = 0 (infinite bandwidth) and must refuse.
  std::vector<ht::SweepPoint> sweep;
  for (const std::size_t bytes : {8u, 64u, 512u, 4096u, 32768u}) {
    ht::SweepPoint p;
    p.pattern = ht::Pattern::kP2p;
    p.level = hc::LinkClass::kNvlink;
    p.group_size = 2;
    p.bytes = bytes;
    p.seconds = 5e-6;
    sweep.push_back(p);
  }
  EXPECT_THROW(ht::fit_sweep(sweep), ht::FitError);
}

TEST(TuneFit, EmptySweepIsTypedError) {
  EXPECT_THROW(ht::fit_sweep({}), ht::FitError);
}

TEST(TuneSweep, CsvRoundTrip) {
  ht::SweepOptions opts;
  opts.topo = hc::Topology::aimos(6);
  opts.sizes = {8, 1024, 65536};
  const auto sweep = ht::run_sweep(opts);
  std::stringstream buf;
  ht::write_sweep_csv(buf, sweep);
  const auto back = ht::read_sweep_csv(buf);
  ASSERT_EQ(back.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(back[i].pattern, sweep[i].pattern);
    EXPECT_EQ(back[i].level, sweep[i].level);
    EXPECT_EQ(back[i].group_size, sweep[i].group_size);
    EXPECT_EQ(back[i].bytes, sweep[i].bytes);
    EXPECT_EQ(back[i].seconds, sweep[i].seconds);  // %.17g exactness
    EXPECT_EQ(back[i].reps, sweep[i].reps);
  }
  std::stringstream bad("not,the,header\n");
  EXPECT_THROW(ht::read_sweep_csv(bad), std::invalid_argument);
}

TEST(TuneCalibration, JsonRoundTripIsExact) {
  const auto topo = test_topology();
  ht::SweepOptions opts;
  opts.topo = topo;
  opts.cost = test_cost();
  const auto cal = ht::make_calibration(topo, ht::fit_sweep(ht::run_sweep(opts)));
  const auto back = ht::Calibration::from_json(cal.to_json());
  EXPECT_EQ(back.version, cal.version);
  EXPECT_EQ(back.topology, cal.topology);
  EXPECT_EQ(back.nranks, cal.nranks);
  for (int i = 0; i < hc::kNumLinkClasses; ++i) {
    const auto& a = cal.level[static_cast<std::size_t>(i)];
    const auto& b = back.level[static_cast<std::size_t>(i)];
    EXPECT_EQ(b.valid, a.valid);
    EXPECT_EQ(b.alpha_s, a.alpha_s);
    EXPECT_EQ(b.beta_bytes_s, a.beta_bytes_s);
    EXPECT_EQ(b.software_alpha_s, a.software_alpha_s);
  }
  ASSERT_EQ(back.crossovers.size(), cal.crossovers.size());
  for (std::size_t i = 0; i < cal.crossovers.size(); ++i) {
    EXPECT_EQ(back.crossovers[i].op, cal.crossovers[i].op);
    EXPECT_EQ(back.crossovers[i].level, cal.crossovers[i].level);
    EXPECT_EQ(back.crossovers[i].group_size, cal.crossovers[i].group_size);
    EXPECT_EQ(back.crossovers[i].bytes, cal.crossovers[i].bytes);
    EXPECT_EQ(back.crossovers[i].below, cal.crossovers[i].below);
    EXPECT_EQ(back.crossovers[i].above, cal.crossovers[i].above);
  }
}

TEST(TuneCalibration, CorruptInputsAreTypedErrors) {
  EXPECT_THROW(ht::Calibration::from_json("{oops"), ht::CalibrationError);
  EXPECT_THROW(ht::Calibration::from_json("[]"), ht::CalibrationError);
  EXPECT_THROW(ht::Calibration::load("/nonexistent/calibration.json"),
               ht::CalibrationError);

  auto cal = ht::reference_calibration(hc::Topology::aimos(12));
  cal.version = ht::Calibration::kVersion + 1;
  EXPECT_THROW(ht::Calibration::from_json(cal.to_json()),
               ht::CalibrationError);
}

TEST(TunePolicy, AdaptiveNeverCostlierAndWinsSmallMessageCorner) {
  const auto topo = hc::Topology::aimos(48);
  const auto policy = ht::reference_calibration(topo).to_policy();
  bool strict_win = false;
  for (const int g : {2, 3, 6, 12, 48}) {
    const hc::LinkClass cls = topo.link_class(0, g - 1);
    const auto& fit = policy.at(cls);
    ASSERT_TRUE(fit.valid);
    for (const hc::CollectiveOp op :
         {hc::CollectiveOp::kAllReduce, hc::CollectiveOp::kBroadcast,
          hc::CollectiveOp::kAllGather, hc::CollectiveOp::kAllToAllV}) {
      for (std::size_t bytes = 8; bytes <= (16u << 20); bytes *= 8) {
        const auto chosen = policy.select(op, cls, g, bytes);
        const double adaptive =
            hc::algo_cost(op, chosen, fit.alpha_s, fit.software_alpha_s,
                          fit.beta_bytes_s, g, bytes);
        const double fixed = hc::algo_cost(
            op, hc::CollectiveAlgo::kDefault, fit.alpha_s,
            fit.software_alpha_s, fit.beta_bytes_s, g, bytes);
        EXPECT_LE(adaptive, fixed * (1.0 + 1e-12))
            << hc::to_string(op) << " g=" << g << " B=" << bytes;
        if (g >= 8 && bytes <= 4096 && adaptive < fixed * (1.0 - 1e-9)) {
          strict_win = true;
        }
      }
    }
  }
  EXPECT_TRUE(strict_win);
}

TEST(TunePolicy, EagerThresholdIsTwoAlphaBeta) {
  const auto topo = hc::Topology::aimos(12);
  const auto policy = ht::reference_calibration(topo).to_policy();
  for (const hc::LinkClass cls :
       {hc::LinkClass::kNvlink, hc::LinkClass::kIntraNode,
        hc::LinkClass::kNetwork}) {
    const auto& fit = policy.at(cls);
    EXPECT_DOUBLE_EQ(policy.eager_threshold_bytes(cls),
                     2.0 * fit.alpha_s * fit.beta_bytes_s);
  }
  hc::CollectivePolicy fixed;
  EXPECT_EQ(fixed.eager_threshold_bytes(hc::LinkClass::kNetwork), 0.0);
}

TEST(TuneCost, BwDerateRejectsNonPositive) {
  hc::CostParams bad;
  bad.bw_derate = 0.0;
  EXPECT_THROW(hc::CostModel{bad}, std::invalid_argument);
  bad.bw_derate = -1.0;
  EXPECT_THROW(hc::CostModel{bad}, std::invalid_argument);
}

namespace {

/// A collective-heavy SPMD body whose per-rank outputs are captured for
/// cross-policy bit comparison.
void policy_workload(hc::Comm& c, std::vector<double>* digest) {
  for (int r = 0; r < 4; ++r) {
    std::vector<double> v{static_cast<double>(c.rank() + 1) * (r + 1)};
    c.allreduce(std::span<double>(v), hc::ReduceOp::kSum);
    digest->push_back(v[0]);
    std::vector<double> mine(3, c.rank() + 0.25 * r);
    const auto gathered = c.allgatherv<double>(mine);
    digest->push_back(gathered.front() + gathered.back());
  }
}

}  // namespace

TEST(TunePolicy, RunResultsAreBitIdenticalAcrossPolicies) {
  const int nranks = 12;
  const auto run_with = [&](const hc::CollectivePolicy& policy, double* makespan) {
    std::vector<std::vector<double>> digests(nranks);
    hc::RunOptions ropts;
    ropts.policy = policy;
    const auto stats =
        hc::Runtime::run(nranks, hc::Topology::aimos(nranks), hc::CostModel{},
                         ropts, [&](hc::Comm& c) {
                           policy_workload(c, &digests[static_cast<std::size_t>(
                                                  c.rank())]);
                         });
    *makespan = stats.makespan();
    return digests;
  };

  double fixed_s = 0.0, adaptive_s = 0.0;
  const auto fixed = run_with({}, &fixed_s);
  const auto adaptive = run_with(
      ht::reference_calibration(hc::Topology::aimos(nranks)).to_policy(),
      &adaptive_s);
  EXPECT_EQ(fixed, adaptive);  // the invariant: results never depend on policy
  EXPECT_LE(adaptive_s, fixed_s * (1.0 + 1e-12));
}

TEST(TunePolicy, AutoChunkDerivedOnlyWithoutExplicitOverride) {
  const int nranks = 6;
  const auto topo = hc::Topology::aimos(nranks);
  const auto adaptive = ht::reference_calibration(topo).to_policy();
  const std::size_t big = 8u << 20;

  hc::RunOptions auto_opts;
  auto_opts.policy = adaptive;
  hc::Runtime::run(nranks, topo, hc::CostModel{}, auto_opts, [&](hc::Comm& c) {
    const int derived = c.auto_chunk_for(big);
    EXPECT_GT(derived, 1);  // large payload: pipelining pays
    EXPECT_LE(derived, hc::CollectivePolicy::kMaxAutoSegments);
    EXPECT_EQ(c.auto_chunk_for(8), 1);  // tiny payload: latency-bound
    // An explicit per-call chunk always wins over the derived default.
    hc::KernelOptions per_call;
    per_call.chunk = 3;
    EXPECT_EQ(per_call.segments_for(c, big), 3);
    hc::KernelOptions unset;
    EXPECT_EQ(unset.segments_for(c, big), derived);
  });

  hc::RunOptions explicit_opts;
  explicit_opts.policy = adaptive;
  explicit_opts.async_chunk = 5;  // explicit run-wide chunk disables auto
  hc::Runtime::run(nranks, topo, hc::CostModel{}, explicit_opts,
                   [&](hc::Comm& c) { EXPECT_EQ(c.auto_chunk_for(big), 5); });

  hc::RunOptions fixed_opts;  // fixed policy: never auto
  hc::Runtime::run(nranks, topo, hc::CostModel{}, fixed_opts,
                   [&](hc::Comm& c) { EXPECT_EQ(c.auto_chunk_for(big), 1); });
}

TEST(TuneCoalesce, ExchangeIsBitIdenticalWithFewerWireMessages) {
  const int nranks = 6;
  const auto topo = hc::Topology::aimos(nranks);

  struct Outcome {
    std::vector<std::vector<std::vector<std::uint64_t>>> recv;  // per rank
    std::vector<hc::CoalesceStats> stats;
    double makespan_s = 0.0;
  };
  const auto exchange = [&](const hc::CollectivePolicy& policy) {
    Outcome out;
    out.recv.resize(nranks);
    out.stats.resize(nranks);
    hc::RunOptions ropts;
    ropts.policy = policy;
    const auto stats = hc::Runtime::run(
        nranks, topo, hc::CostModel{}, ropts, [&](hc::Comm& c) {
          // Many small items per destination — the aggregation sweet spot.
          std::vector<std::vector<std::uint64_t>> send(nranks);
          for (int d = 0; d < nranks; ++d) {
            for (int i = 0; i < 8; ++i) {
              send[static_cast<std::size_t>(d)].push_back(
                  static_cast<std::uint64_t>(c.rank() * 1000 + d * 10 + i));
            }
          }
          const auto r = static_cast<std::size_t>(c.rank());
          out.stats[r] = hc::p2p_exchange<std::uint64_t>(
              c, send, out.recv[r], /*tag=*/911);
        });
    out.makespan_s = stats.makespan();
    return out;
  };

  const auto fixed = exchange({});
  const auto adaptive =
      exchange(ht::reference_calibration(topo).to_policy());
  EXPECT_EQ(fixed.recv, adaptive.recv);  // payloads identical either way
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(fixed.stats[static_cast<std::size_t>(r)].items_sent,
              adaptive.stats[static_cast<std::size_t>(r)].items_sent);
    // 8 items for 5 peers: 40 wire messages uncoalesced, 5 coalesced.
    EXPECT_EQ(fixed.stats[static_cast<std::size_t>(r)].wire_messages, 40u);
    EXPECT_EQ(adaptive.stats[static_cast<std::size_t>(r)].wire_messages, 5u);
  }
  EXPECT_LT(adaptive.makespan_s, fixed.makespan_s);
}

// 2D distribution invariants over many grid shapes (paper §3.2):
//   * every global edge lands in exactly one block;
//   * local degrees sum to the true degree across a row group;
//   * row groups share a vertex set, column groups share a ghost set;
//   * the dense exchange produces globally consistent state.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <mutex>
#include <numeric>

#include "core/dense_comm.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;
using hpcg::test::striped_view;

namespace {

struct GridShape {
  int rows;
  int cols;
};

class Dist2DP : public ::testing::TestWithParam<GridShape> {};

TEST_P(Dist2DP, EveryEdgeInExactlyOneBlock) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(8, 6, 17);
  const auto parts = hc::Partitioned2D::build(el, hc::Grid(rows, cols));

  std::int64_t total = 0;
  std::map<hg::Edge, int> seen;
  for (int r = 0; r < parts.grid().ranks(); ++r) {
    total += static_cast<std::int64_t>(parts.edges_of(r).size());
    for (const auto& e : parts.edges_of(r)) {
      ++seen[e];
      // The edge must respect the block bounds.
      EXPECT_EQ(parts.row_partition().part_of(e.u), parts.grid().row_group_of(r));
      EXPECT_EQ(parts.col_partition().part_of(e.v), parts.grid().col_group_of(r));
    }
  }
  EXPECT_EQ(total, el.m());

  // Cross-check multiplicity against the (striped) global list.
  auto striped = striped_view(el, parts.grid());
  std::map<hg::Edge, int> expected;
  for (const auto& e : striped.edges) ++expected[e];
  EXPECT_EQ(seen, expected);
}

TEST_P(Dist2DP, LocalDegreesSumToTrueDegree) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(8, 6, 23);
  const auto striped = striped_view(el, hc::Grid(rows, cols));
  const auto true_deg = hg::out_degrees(striped);

  std::mutex mutex;
  std::map<hg::Gid, std::int64_t> summed;
  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto& lids = g.lids();
    std::lock_guard lock(mutex);
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      summed[lids.to_gid(v)] += g.local_degree(v);
    }
  });
  for (hg::Gid v = 0; v < el.n; ++v) {
    EXPECT_EQ(summed[v], true_deg[static_cast<std::size_t>(v)]) << "vertex " << v;
  }
}

TEST_P(Dist2DP, GlobalRowDegreesMatchOracle) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 5, 29);
  const auto striped = striped_view(el, hc::Grid(rows, cols));
  const auto true_deg = hg::out_degrees(striped);

  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto& deg = g.global_row_degrees();
    const auto& lids = g.lids();
    for (hc::Lid v = 0; v < lids.n_row(); ++v) {
      EXPECT_EQ(deg[static_cast<std::size_t>(v)],
                true_deg[static_cast<std::size_t>(lids.row_offset() + v)]);
    }
  });
}

TEST_P(Dist2DP, GroupStructure) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 4, 31);
  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    EXPECT_EQ(g.row_comm().size(), g.grid().ranks_per_row_group());
    EXPECT_EQ(g.col_comm().size(), g.grid().ranks_per_col_group());
    EXPECT_EQ(g.rank_r(), g.row_comm().rank());
    EXPECT_EQ(g.rank_c(), g.col_comm().rank());
    EXPECT_EQ(g.grid().rank_at(g.id_r(), g.id_c()), comm.rank());

    // Row groups share the vertex range; column groups share the ghost
    // range (paper: "each row group exclusively owns the same set of
    // vertices and each column group has the same set of ghosts").
    hg::Gid row_range[2] = {g.lids().row_offset(), g.lids().n_row()};
    g.row_comm().allreduce(std::span<hg::Gid>(row_range, 2), hpcg::comm::ReduceOp::kMax);
    EXPECT_EQ(row_range[0], g.lids().row_offset());
    EXPECT_EQ(row_range[1], g.lids().n_row());

    hg::Gid col_range[2] = {g.lids().col_offset(), g.lids().n_col()};
    g.col_comm().allreduce(std::span<hg::Gid>(col_range, 2), hpcg::comm::ReduceOp::kMax);
    EXPECT_EQ(col_range[0], g.lids().col_offset());
    EXPECT_EQ(col_range[1], g.lids().n_col());
  });
}

TEST_P(Dist2DP, DenseExchangeProducesGlobalConsistency) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 5, 37);
  const auto striped = striped_view(el, hc::Grid(rows, cols));
  const auto true_deg = hg::out_degrees(striped);

  for (const auto dir : {hc::Direction::kPush, hc::Direction::kPull}) {
    run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
      const auto& lids = g.lids();
      // Push degrees through a SUM exchange: every slot must end with the
      // vertex's true degree.
      std::vector<double> state(static_cast<std::size_t>(lids.n_total()), 0.0);
      if (dir == hc::Direction::kPull) {
        for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
          state[static_cast<std::size_t>(v)] = static_cast<double>(g.local_degree(v));
        }
      } else {
        // Push: scatter per-edge contributions onto column slots.
        const auto offsets = g.csr().offsets();
        const auto adj = g.csr().adjacencies();
        for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
          for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            state[static_cast<std::size_t>(adj[e])] += 1.0;
          }
        }
      }
      hc::dense_exchange(g, std::span(state), hpcg::comm::ReduceOp::kSum, dir);
      for (hc::Lid l = 0; l < lids.n_total(); ++l) {
        const auto expect = dir == hc::Direction::kPull
                                ? true_deg[static_cast<std::size_t>(lids.to_gid(l))]
                                : [&] {
                                    // Push counts in-edges == out-degree
                                    // (symmetrized).
                                    return true_deg[static_cast<std::size_t>(
                                        lids.to_gid(l))];
                                  }();
        EXPECT_DOUBLE_EQ(state[static_cast<std::size_t>(l)],
                         static_cast<double>(expect))
            << "lid " << l;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Dist2DP,
    ::testing::Values(GridShape{1, 1}, GridShape{1, 4}, GridShape{4, 1},
                      GridShape{2, 2}, GridShape{2, 4}, GridShape{4, 2},
                      GridShape{3, 3}, GridShape{3, 5}, GridShape{4, 4}),
    [](const ::testing::TestParamInfo<GridShape>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols);
    });

TEST(Grid, PlacementRoundTripsAndPartitionsRanks) {
  for (const auto placement : {hc::Placement::kRowMajor, hc::Placement::kColMajor}) {
    const hc::Grid grid(3, 4, placement);
    std::set<int> seen;
    for (int rg = 0; rg < 3; ++rg) {
      for (int cg = 0; cg < 4; ++cg) {
        const int rank = grid.rank_at(rg, cg);
        EXPECT_EQ(grid.row_group_of(rank), rg);
        EXPECT_EQ(grid.col_group_of(rank), cg);
        seen.insert(rank);
      }
    }
    EXPECT_EQ(seen.size(), 12u);  // bijection onto [0, ranks)
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 11);
  }
  // Column-major packs consecutive ranks into the same column group.
  const hc::Grid cm(3, 4, hc::Placement::kColMajor);
  EXPECT_EQ(cm.col_group_of(0), cm.col_group_of(1));
  EXPECT_EQ(cm.col_group_of(1), cm.col_group_of(2));
  EXPECT_NE(cm.col_group_of(2), cm.col_group_of(3));
}

TEST(Grid, AlgorithmsCorrectUnderColMajorPlacement) {
  const auto el = small_rmat(7, 5, 1901);
  const hc::Grid grid(2, 3, hc::Placement::kColMajor);
  const auto striped = striped_view(el, grid);
  const auto true_deg = hg::out_degrees(striped);
  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    const auto& deg = g.global_row_degrees();
    const auto& lids = g.lids();
    for (hg::Gid v = 0; v < lids.n_row(); ++v) {
      EXPECT_EQ(deg[static_cast<std::size_t>(v)],
                true_deg[static_cast<std::size_t>(lids.row_offset() + v)]);
    }
  });
}

TEST(Grid, SquarestFactorization) {
  EXPECT_EQ(hc::Grid::squarest(1).row_groups(), 1);
  EXPECT_EQ(hc::Grid::squarest(16).row_groups(), 4);
  EXPECT_EQ(hc::Grid::squarest(16).col_groups(), 4);
  EXPECT_EQ(hc::Grid::squarest(12).row_groups(), 3);
  EXPECT_EQ(hc::Grid::squarest(12).col_groups(), 4);
  EXPECT_EQ(hc::Grid::squarest(7).row_groups(), 1);
  EXPECT_EQ(hc::Grid::squarest(400).row_groups(), 20);
}

TEST(BlockPartition, CoversWithoutGaps) {
  hc::BlockPartition part(103, 7);
  hg::Gid covered = 0;
  for (int p = 0; p < 7; ++p) {
    EXPECT_EQ(part.start(p), covered);
    covered += part.count(p);
    for (hg::Gid v = part.start(p); v < part.end(p); ++v) {
      EXPECT_EQ(part.part_of(v), p);
    }
  }
  EXPECT_EQ(covered, 103);
  EXPECT_THROW(part.part_of(103), std::out_of_range);
}

}  // namespace

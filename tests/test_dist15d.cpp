// 1.5D hybrid distribution: structure invariants and algorithm
// correctness against the sequential oracles.
#include <gtest/gtest.h>

#include <mutex>

#include "algos/reference.hpp"
#include "baselines/dist15d.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hb = hpcg::baselines;
namespace hg = hpcg::graph;
using hpcg::test::small_rmat;

namespace {

class Dist15dP : public ::testing::TestWithParam<int> {};  // nranks

TEST_P(Dist15dP, HeavySetAndEdgePlacementInvariants) {
  const int p = GetParam();
  const auto el = small_rmat(8, 8, 601);
  const auto parts = hb::Partitioned15D::build(el, p, /*heavy_multiple=*/4.0);

  // Every edge placed exactly once; heavy-source edges spread evenly.
  std::int64_t total = 0;
  std::int64_t max_edges = 0;
  for (int r = 0; r < p; ++r) {
    const auto count = static_cast<std::int64_t>(parts.edges_of(r).size());
    total += count;
    max_edges = std::max(max_edges, count);
  }
  EXPECT_EQ(total, el.m());
  if (p > 1) {
    // RMAT at this skew has heavy hubs; 1.5D should keep imbalance modest.
    EXPECT_FALSE(parts.heavy().empty());
    EXPECT_LT(static_cast<double>(max_edges) * p / static_cast<double>(total), 2.0);
  }
  // Heavy set is sorted, deduplicated, and above the threshold.
  auto striped = el;
  parts.relabel().apply(striped);
  const auto degree = hg::out_degrees(striped);
  const double average = static_cast<double>(el.m()) / static_cast<double>(el.n);
  for (std::size_t i = 0; i < parts.heavy().size(); ++i) {
    if (i > 0) EXPECT_LT(parts.heavy()[i - 1], parts.heavy()[i]);
    EXPECT_GT(degree[static_cast<std::size_t>(parts.heavy()[i])], 4.0 * average);
    EXPECT_TRUE(parts.is_heavy(parts.heavy()[i]));
  }
}

TEST_P(Dist15dP, CcMatchesReference) {
  const int p = GetParam();
  const auto el = small_rmat(8, 6, 603);
  const auto parts = hb::Partitioned15D::build(el, p, 4.0);
  auto striped = el;
  parts.relabel().apply(striped);
  const auto expect = ha::ref::connected_components(striped);

  hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                           hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
    hb::Dist15DGraph g(comm, parts);
    auto result = hb::connected_components_15d(g);
    auto labels = g.gather(std::span<const hg::Gid>(result));
    for (hg::Gid v = 0; v < el.n; ++v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
  });
}

TEST_P(Dist15dP, BfsMatchesReferenceFromLightAndHeavyRoots) {
  const int p = GetParam();
  const auto el = small_rmat(8, 6, 605);
  const auto parts = hb::Partitioned15D::build(el, p, 4.0);
  auto striped = el;
  parts.relabel().apply(striped);
  hg::Csr ref_csr(striped.n, striped.edges);

  // Roots: vertex 3 (typically light) and the first heavy vertex if any.
  std::vector<hg::Gid> roots{3};
  if (!parts.heavy().empty()) {
    roots.push_back(parts.relabel().to_original(parts.heavy()[0]));
  }
  for (const auto root : roots) {
    const auto expect = ha::ref::bfs_levels(ref_csr, parts.relabel().to_new(root));
    hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                             hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
      hb::Dist15DGraph g(comm, parts);
      auto level = hb::bfs_15d(g, root);
      auto gathered = g.gather(std::span<const std::int64_t>(level));
      for (hg::Gid v = 0; v < el.n; ++v) {
        const auto want = expect[static_cast<std::size_t>(v)];
        EXPECT_EQ(gathered[static_cast<std::size_t>(v)],
                  want < 0 ? (std::int64_t{1} << 62) : want)
            << "root " << root << " vertex " << v;
      }
    });
  }
}

TEST_P(Dist15dP, LidGidRoundTrip) {
  const int p = GetParam();
  const auto el = small_rmat(7, 5, 607);
  const auto parts = hb::Partitioned15D::build(el, p, 4.0);
  hpcg::comm::Runtime::run(p, hpcg::comm::Topology::aimos(p), hpcg::comm::CostModel{},
                           hpcg::comm::RunOptions{}, [&](hpcg::comm::Comm& comm) {
    hb::Dist15DGraph g(comm, parts);
    for (hb::Lid l = 0; l < g.n_total(); ++l) {
      EXPECT_EQ(g.to_lid(g.to_gid(l)), l);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, Dist15dP, ::testing::Values(1, 2, 4, 7, 12),
                         ::testing::PrintToStringParamName());

}  // namespace

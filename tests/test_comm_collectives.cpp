// Correctness of every collective over many group sizes, including group
// sizes that do not divide evenly into the topology's nodes/cliques and
// subcommunicators created by split().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/runtime.hpp"

namespace hc = hpcg::comm;

namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BroadcastFromEveryRoot) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data(17, comm.rank() == root ? 1000 + root : -1);
      comm.broadcast(std::span(data), root);
      for (const auto v : data) EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(CollectivesP, AllReduceSumMinMax) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    std::vector<std::int64_t> sum(8);
    for (std::size_t i = 0; i < sum.size(); ++i) {
      sum[i] = comm.rank() + static_cast<std::int64_t>(i);
    }
    comm.allreduce(std::span(sum), hc::ReduceOp::kSum);
    const std::int64_t rank_total = static_cast<std::int64_t>(p) * (p - 1) / 2;
    for (std::size_t i = 0; i < sum.size(); ++i) {
      EXPECT_EQ(sum[i], rank_total + static_cast<std::int64_t>(i) * p);
    }

    std::vector<double> mn(3, 100.0 + comm.rank());
    comm.allreduce(std::span(mn), hc::ReduceOp::kMin);
    for (const auto v : mn) EXPECT_DOUBLE_EQ(v, 100.0);

    std::vector<double> mx(3, 100.0 + comm.rank());
    comm.allreduce(std::span(mx), hc::ReduceOp::kMax);
    for (const auto v : mx) EXPECT_DOUBLE_EQ(v, 100.0 + p - 1);
  });
}

TEST_P(CollectivesP, AllReduceCustomCombiner) {
  const int p = GetParam();
  struct WeightLoc {
    double weight;
    std::int64_t loc;
  };
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    // MAXLOC with smallest-loc tie break, as the matching algorithm needs.
    std::vector<WeightLoc> data(5);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = {static_cast<double>((comm.rank() * 7 + static_cast<int>(i)) % p),
                 comm.rank()};
    }
    comm.allreduce(std::span(data), [](WeightLoc& into, const WeightLoc& from) {
      if (from.weight > into.weight ||
          (from.weight == into.weight && from.loc < into.loc)) {
        into = from;
      }
    });
    for (std::size_t i = 0; i < data.size(); ++i) {
      // Check against a direct evaluation.
      WeightLoc expect{-1.0, -1};
      for (int r = 0; r < p; ++r) {
        const double w = static_cast<double>((r * 7 + static_cast<int>(i)) % p);
        if (w > expect.weight || (w == expect.weight && r < expect.loc)) {
          expect = {w, r};
        }
      }
      EXPECT_DOUBLE_EQ(data[i].weight, expect.weight) << "slot " << i;
      EXPECT_EQ(data[i].loc, expect.loc) << "slot " << i;
    }
  });
}

TEST_P(CollectivesP, RootedReduceGatherScatter) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    for (int root = 0; root < p; root += std::max(1, p / 3)) {
      // Reduce: only the root sees the sum; others keep their values.
      std::vector<std::int64_t> data(5, comm.rank() + 1);
      comm.reduce(std::span(data), root, hc::ReduceOp::kSum);
      const std::int64_t expect_sum = static_cast<std::int64_t>(p) * (p + 1) / 2;
      for (const auto v : data) {
        EXPECT_EQ(v, comm.rank() == root ? expect_sum : comm.rank() + 1);
      }

      // Gather: root assembles everyone's block in group order.
      std::vector<std::int32_t> send{comm.rank(), comm.rank() * 10};
      std::vector<std::int32_t> recv(static_cast<std::size_t>(2) * p, -1);
      comm.gather(std::span<const std::int32_t>(send), std::span(recv), root);
      if (comm.rank() == root) {
        for (int m = 0; m < p; ++m) {
          EXPECT_EQ(recv[static_cast<std::size_t>(2 * m)], m);
          EXPECT_EQ(recv[static_cast<std::size_t>(2 * m) + 1], m * 10);
        }
      }

      // Scatter: member i receives the root's block i.
      std::vector<std::int32_t> blocks(static_cast<std::size_t>(3) * p);
      for (int m = 0; m < p; ++m) {
        for (int k = 0; k < 3; ++k) {
          blocks[static_cast<std::size_t>(3 * m + k)] = m * 100 + k;
        }
      }
      std::vector<std::int32_t> mine(3, -1);
      comm.scatter(std::span<const std::int32_t>(blocks), std::span(mine), root);
      for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(mine[static_cast<std::size_t>(k)], comm.rank() * 100 + k);
      }
    }
  });
}

TEST_P(CollectivesP, ReduceScatterEqualsAllReduceSlice) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    const std::size_t block = 4;
    std::vector<double> send(block * static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<double>(comm.rank()) + static_cast<double>(i) * 0.5;
    }
    std::vector<double> mine(block);
    comm.reduce_scatter(std::span<const double>(send), std::span(mine),
                        hc::ReduceOp::kSum);
    // Oracle: allreduce of the full buffer, then take my block.
    auto full = send;
    for (std::size_t i = 0; i < full.size(); ++i) {
      full[i] = 0;
      for (int m = 0; m < p; ++m) {
        full[i] += static_cast<double>(m) + static_cast<double>(i) * 0.5;
      }
    }
    for (std::size_t k = 0; k < block; ++k) {
      EXPECT_DOUBLE_EQ(mine[k],
                       full[static_cast<std::size_t>(comm.rank()) * block + k]);
    }
  });
}

TEST_P(CollectivesP, AllGatherFixedAndVariable) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    std::vector<std::int32_t> send(4, comm.rank());
    std::vector<std::int32_t> recv(static_cast<std::size_t>(4) * p, -1);
    comm.allgather(std::span<const std::int32_t>(send), std::span(recv));
    for (int m = 0; m < p; ++m) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(recv[static_cast<std::size_t>(m) * 4 + i], m);
    }

    // Variable: rank r contributes r+1 copies of r (rank p-1 contributes 0
    // to also exercise empty contributions).
    const std::size_t mine = comm.rank() == p - 1 ? 0 : static_cast<std::size_t>(comm.rank()) + 1;
    std::vector<std::int64_t> vsend(mine, comm.rank());
    std::vector<std::size_t> counts;
    auto gathered = comm.allgatherv(std::span<const std::int64_t>(vsend), &counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t offset = 0;
    for (int m = 0; m < p; ++m) {
      const std::size_t expect_count = m == p - 1 ? 0 : static_cast<std::size_t>(m) + 1;
      EXPECT_EQ(counts[m], expect_count);
      for (std::size_t i = 0; i < counts[m]; ++i) EXPECT_EQ(gathered[offset + i], m);
      offset += counts[m];
    }
    EXPECT_EQ(gathered.size(), offset);
  });
}

TEST_P(CollectivesP, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    // Rank r sends (r + d) % 3 values of (r * 1000 + d) to destination d.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::int64_t> send;
    for (int d = 0; d < p; ++d) {
      send_counts[d] = static_cast<std::size_t>((comm.rank() + d) % 3);
      for (std::size_t i = 0; i < send_counts[d]; ++i) {
        send.push_back(comm.rank() * 1000 + d);
      }
    }
    std::vector<std::size_t> recv_counts;
    auto recv = comm.alltoallv(std::span<const std::int64_t>(send),
                               std::span<const std::size_t>(send_counts),
                               &recv_counts);
    ASSERT_EQ(recv_counts.size(), static_cast<std::size_t>(p));
    std::size_t offset = 0;
    for (int m = 0; m < p; ++m) {
      EXPECT_EQ(recv_counts[m], static_cast<std::size_t>((m + comm.rank()) % 3));
      for (std::size_t i = 0; i < recv_counts[m]; ++i) {
        EXPECT_EQ(recv[offset + i], m * 1000 + comm.rank());
      }
      offset += recv_counts[m];
    }
  });
}

TEST_P(CollectivesP, MultiBroadcastGroupCall) {
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    // Three segments with roots spread over the group.
    std::vector<std::vector<std::int32_t>> bufs(3);
    std::vector<hc::BcastSeg<std::int32_t>> segs;
    for (int s = 0; s < 3; ++s) {
      const int root = (s * 5) % p;
      bufs[s].assign(static_cast<std::size_t>(s) + 2,
                     comm.rank() == root ? 77 + s : -1);
      segs.push_back({root, bufs[s].data(), bufs[s].size()});
    }
    comm.multi_broadcast(std::span<const hc::BcastSeg<std::int32_t>>(segs));
    for (int s = 0; s < 3; ++s) {
      for (const auto v : bufs[s]) EXPECT_EQ(v, 77 + s);
    }
  });
}

TEST_P(CollectivesP, SplitRowColumnGrids) {
  const int p = GetParam();
  // Find a grid factorization p = rows * cols with rows as close to sqrt(p).
  int rows = 1;
  for (int r = 1; r * r <= p; ++r) {
    if (p % r == 0) rows = r;
  }
  const int cols = p / rows;
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    const int my_row = comm.rank() / cols;
    const int my_col = comm.rank() % cols;
    hc::Comm row_comm = comm.split(my_row, my_col);
    hc::Comm col_comm = comm.split(my_col, my_row);
    EXPECT_EQ(row_comm.size(), cols);
    EXPECT_EQ(col_comm.size(), rows);
    EXPECT_EQ(row_comm.rank(), my_col);
    EXPECT_EQ(col_comm.rank(), my_row);

    // Row-group allreduce sums ranks within a row only.
    std::int64_t v = comm.rank();
    v = row_comm.allreduce_one(v, hc::ReduceOp::kSum);
    std::int64_t expect = 0;
    for (int c = 0; c < cols; ++c) expect += my_row * cols + c;
    EXPECT_EQ(v, expect);

    // Column-group broadcast from the diagonal-style root.
    std::int64_t w = col_comm.rank() == my_col % rows ? 4242 : 0;
    col_comm.broadcast(std::span(&w, 1), my_col % rows);
    EXPECT_EQ(w, 4242);
  });
}

TEST_P(CollectivesP, CallerOwnedReceiveBuffers) {
  // The allocation-free overloads: allgatherv/alltoallv/recv must clear
  // and resize a caller-owned vector in place (stale junk included) and
  // agree exactly with the returning forms.
  const int p = GetParam();
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    std::vector<std::int64_t> vsend(
        static_cast<std::size_t>(comm.rank()) % 4, comm.rank());
    std::vector<std::int64_t> out(100, -777);  // junk to be replaced
    std::vector<std::size_t> counts(3, 999);
    comm.allgatherv(std::span<const std::int64_t>(vsend), out, &counts);
    std::vector<std::size_t> oracle_counts;
    const auto oracle =
        comm.allgatherv(std::span<const std::int64_t>(vsend), &oracle_counts);
    EXPECT_EQ(out, oracle);
    EXPECT_EQ(counts, oracle_counts);

    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::int64_t> send;
    for (int d = 0; d < p; ++d) {
      send_counts[d] = static_cast<std::size_t>((comm.rank() + 2 * d) % 3);
      for (std::size_t i = 0; i < send_counts[d]; ++i) {
        send.push_back(comm.rank() * 100 + d);
      }
    }
    std::vector<std::int64_t> recv(7, -1);
    std::vector<std::size_t> recv_counts;
    comm.alltoallv(std::span<const std::int64_t>(send),
                   std::span<const std::size_t>(send_counts), recv,
                   &recv_counts);
    std::vector<std::size_t> oracle_rc;
    const auto oracle_recv =
        comm.alltoallv(std::span<const std::int64_t>(send),
                       std::span<const std::size_t>(send_counts), &oracle_rc);
    EXPECT_EQ(recv, oracle_recv);
    EXPECT_EQ(recv_counts, oracle_rc);

    if (p > 1) {
      const int next = (comm.rank() + 1) % p;
      const int prev = (comm.rank() + p - 1) % p;
      std::vector<std::int32_t> payload{comm.rank(), comm.rank() * 3};
      comm.send(std::span<const std::int32_t>(payload), next, /*tag=*/5);
      std::vector<std::int32_t> got(64, -9);
      comm.recv(prev, /*tag=*/5, got);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], prev);
      EXPECT_EQ(got[1], prev * 3);
    }
  });
}

TEST_P(CollectivesP, SendRecvRing) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP() << "ring needs 2+ ranks";
  hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{}, hc::RunOptions{},
                   [&](hc::Comm& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    std::vector<std::int32_t> payload{comm.rank(), comm.rank() * 2};
    comm.send(std::span<const std::int32_t>(payload), next, /*tag=*/7);
    auto got = comm.recv<std::int32_t>(prev, /*tag=*/7);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev);
    EXPECT_EQ(got[1], prev * 2);
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 8, 12, 16, 25, 33),
                         ::testing::PrintToStringParamName());

TEST(CommErrors, RankFailurePropagatesWithoutDeadlock) {
  EXPECT_THROW(
      hc::Runtime::run(4, hc::Topology::aimos(4), hc::CostModel{}, hc::RunOptions{},
                       [](hc::Comm& comm) {
                         if (comm.rank() == 2) {
                           throw std::runtime_error("rank 2 exploded");
                         }
                         comm.barrier();  // would deadlock without abort
                         comm.barrier();
                       }),
      std::runtime_error);
}

TEST(CommStats, TrafficAndClocksAreAccounted) {
  auto stats = hc::Runtime::run(8, hc::Topology::aimos(8), hc::CostModel{},
                                hc::RunOptions{}, [](hc::Comm& comm) {
    std::vector<double> x(1024, comm.rank());
    comm.allreduce(std::span(x), hc::ReduceOp::kSum);
    comm.broadcast(std::span(x), 0);
  });
  EXPECT_EQ(stats.vclock.size(), 8u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.collectives, 2u * 1);  // leader counts once per collective
  EXPECT_GT(stats.makespan(), 0.0);
  EXPECT_GT(stats.max_comm(), 0.0);
  // All ranks end the final collective synchronized; only the trailing
  // compute flush after it differs per rank. That flush is measured
  // thread-CPU time, so under host load it can be sizable — assert only
  // that every rank reached at least the synchronized time.
  const double synchronized = *std::min_element(stats.vclock.begin(), stats.vclock.end());
  EXPECT_GT(synchronized, 0.0);
  for (const auto t : stats.vclock) EXPECT_GE(t, synchronized);
}

TEST(CommStats, LargerGroupsCostMoreCommunication) {
  auto run_with = [](int p) {
    return hc::Runtime::run(p, hc::Topology::aimos(p), hc::CostModel{},
                            hc::RunOptions{}, [](hc::Comm& comm) {
      std::vector<double> x(4096, comm.rank());
      for (int i = 0; i < 10; ++i) comm.allreduce(std::span(x), hc::ReduceOp::kSum);
    });
  };
  const double c2 = run_with(2).max_comm();
  const double c16 = run_with(16).max_comm();
  EXPECT_GT(c16, c2);
}

}  // namespace

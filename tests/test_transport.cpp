// Transport conformance: every collective, p2p, split and nonblocking path
// exercised over BOTH backends — the shared-memory/virtual-clock substrate
// and the socket transport (real framed messages, wall-clock) — with the
// same assertions, plus socket-specific wire-level tests (liveness via
// EOF/goodbye, checksum validation, timeout policy) and process-level
// crash-recovery through the hpcg_run launcher.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/gather.hpp"
#include "algos/pagerank.hpp"
#include "comm/errors.hpp"
#include "comm/runtime.hpp"
#include "comm/transport/launcher.hpp"
#include "comm/transport/socket_transport.hpp"
#include "comm/transport/thread_gang.hpp"
#include "core/dist2d.hpp"
#include "fault/file_store.hpp"
#include "graph/datasets.hpp"

namespace hc = hpcg::comm;
namespace ht = hpcg::comm::transport;

namespace {

enum class Backend { kShm, kSocket };

void run_backend(Backend backend, int p,
                 const std::function<void(hc::Comm&)>& body,
                 hc::RunOptions options = {}) {
  const auto topo = hc::Topology::aimos(p);
  if (backend == Backend::kShm) {
    hc::Runtime::run(p, topo, hc::CostModel{}, options, body);
  } else {
    ht::run_socket_threads(p, topo, hc::CostModel{}, options, body);
  }
}

class TransportP
    : public ::testing::TestWithParam<std::tuple<Backend, int>> {
 protected:
  Backend backend() const { return std::get<0>(GetParam()); }
  int nranks() const { return std::get<1>(GetParam()); }
};

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Backend, int>>& info) {
  return std::string(std::get<0>(info.param) == Backend::kShm ? "shm"
                                                              : "socket") +
         "_" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportP,
    ::testing::Combine(::testing::Values(Backend::kShm, Backend::kSocket),
                       ::testing::Values(2, 3, 4, 6)),
    param_name);

TEST_P(TransportP, BroadcastFromEveryRoot) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data(17,
                                     comm.rank() == root ? 1000 + root : -1);
      comm.broadcast(std::span(data), root);
      for (const auto v : data) EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(TransportP, AllReduceBuiltinAndCustom) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    std::vector<std::int64_t> sum(8);
    for (std::size_t i = 0; i < sum.size(); ++i) {
      sum[i] = comm.rank() + static_cast<std::int64_t>(i);
    }
    comm.allreduce(std::span(sum), hc::ReduceOp::kSum);
    const std::int64_t base = static_cast<std::int64_t>(p) * (p - 1) / 2;
    for (std::size_t i = 0; i < sum.size(); ++i) {
      EXPECT_EQ(sum[i], base + static_cast<std::int64_t>(i) * p);
    }

    std::vector<double> mn(3, 100.0 + comm.rank());
    comm.allreduce(std::span(mn), hc::ReduceOp::kMin);
    for (const auto v : mn) EXPECT_DOUBLE_EQ(v, 100.0);

    // Custom combiner: (weight, location) argmax.
    struct WeightLoc {
      double weight;
      std::int64_t loc;
    };
    std::vector<WeightLoc> wl(4);
    for (std::size_t i = 0; i < wl.size(); ++i) {
      wl[i] = {static_cast<double>((comm.rank() * 7 + 3) % p), comm.rank()};
    }
    comm.allreduce(std::span(wl), [](WeightLoc& into, const WeightLoc& from) {
      if (from.weight > into.weight ||
          (from.weight == into.weight && from.loc < into.loc)) {
        into = from;
      }
    });
    double best = -1.0;
    std::int64_t best_loc = 0;
    for (int r = 0; r < p; ++r) {
      const double w = static_cast<double>((r * 7 + 3) % p);
      if (w > best) {
        best = w;
        best_loc = r;
      }
    }
    for (const auto& v : wl) {
      EXPECT_DOUBLE_EQ(v.weight, best);
      EXPECT_EQ(v.loc, best_loc);
    }
  });
}

TEST_P(TransportP, ReduceToEveryRoot) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data(5, comm.rank() + 1);
      comm.reduce(std::span(data), root, hc::ReduceOp::kSum);
      if (comm.rank() == root) {
        const std::int64_t want = static_cast<std::int64_t>(p) * (p + 1) / 2;
        for (const auto v : data) EXPECT_EQ(v, want);
      }
    }
  });
}

TEST_P(TransportP, ReduceScatterGatherScatter) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    // reduce_scatter: each member contributes rank+1 everywhere.
    const std::size_t block = 3;
    std::vector<std::int64_t> send(block * static_cast<std::size_t>(p),
                                   comm.rank() + 1);
    std::vector<std::int64_t> recv(block);
    comm.reduce_scatter(std::span<const std::int64_t>(send), std::span(recv),
                        hc::ReduceOp::kSum);
    const std::int64_t want = static_cast<std::int64_t>(p) * (p + 1) / 2;
    for (const auto v : recv) EXPECT_EQ(v, want);

    // gather to a non-zero root when there is one.
    const int root = p - 1;
    std::vector<std::int64_t> mine(block, 100 + comm.rank());
    std::vector<std::int64_t> gathered(
        comm.rank() == root ? block * static_cast<std::size_t>(p) : 0);
    comm.gather(std::span<const std::int64_t>(mine), std::span(gathered),
                root);
    if (comm.rank() == root) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < block; ++i) {
          EXPECT_EQ(gathered[static_cast<std::size_t>(r) * block + i],
                    100 + r);
        }
      }
    }

    // scatter back out from the same root.
    std::vector<std::int64_t> to_scatter(
        comm.rank() == root ? block * static_cast<std::size_t>(p) : 0);
    if (comm.rank() == root) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < block; ++i) {
          to_scatter[static_cast<std::size_t>(r) * block + i] = 1000 + r;
        }
      }
    }
    std::vector<std::int64_t> piece(block);
    comm.scatter(std::span<const std::int64_t>(to_scatter), std::span(piece),
                 root);
    for (const auto v : piece) EXPECT_EQ(v, 1000 + comm.rank());
  });
}

TEST_P(TransportP, AllGatherFixedAndVariable) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    std::vector<std::int64_t> mine(2, 10 * comm.rank());
    std::vector<std::int64_t> all(2 * static_cast<std::size_t>(p));
    comm.allgather(std::span<const std::int64_t>(mine), std::span(all));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r)], 10 * r);
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1], 10 * r);
    }

    // Variable counts: rank r contributes r+1 elements (rank p-1 zero to
    // cover empty contributions).
    const std::size_t n_mine =
        comm.rank() == p - 1 ? 0 : static_cast<std::size_t>(comm.rank()) + 1;
    std::vector<std::int64_t> var(n_mine, comm.rank());
    std::vector<std::int64_t> out;
    std::vector<std::size_t> counts;
    comm.allgatherv(std::span<const std::int64_t>(var), out, &counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t off = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t want =
          r == p - 1 ? 0 : static_cast<std::size_t>(r) + 1;
      EXPECT_EQ(counts[static_cast<std::size_t>(r)], want);
      for (std::size_t i = 0; i < want; ++i) EXPECT_EQ(out[off + i], r);
      off += want;
    }
    EXPECT_EQ(out.size(), off);
  });
}

TEST_P(TransportP, AllToAllVSkewed) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    // Rank r sends (r + d) % p elements to destination d (zeros included);
    // every element encodes (src, dest) so placement is fully checked.
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::int64_t> send;
    for (int d = 0; d < p; ++d) {
      const std::size_t n = static_cast<std::size_t>((comm.rank() + d) % p);
      send_counts[static_cast<std::size_t>(d)] = n;
      for (std::size_t i = 0; i < n; ++i) {
        send.push_back(comm.rank() * 1000 + d);
      }
    }
    std::vector<std::int64_t> out;
    std::vector<std::size_t> recv_counts;
    comm.alltoallv(std::span<const std::int64_t>(send),
                   std::span<const std::size_t>(send_counts), out,
                   &recv_counts);
    ASSERT_EQ(recv_counts.size(), static_cast<std::size_t>(p));
    std::size_t off = 0;
    for (int s = 0; s < p; ++s) {
      const std::size_t n = static_cast<std::size_t>((s + comm.rank()) % p);
      EXPECT_EQ(recv_counts[static_cast<std::size_t>(s)], n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[off + i], s * 1000 + comm.rank());
      }
      off += n;
    }
    EXPECT_EQ(out.size(), off);
  });
}

TEST_P(TransportP, MultiBroadcast) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    // One segment rooted at every rank, grouped into a single call.
    std::vector<std::vector<std::int64_t>> bufs(
        static_cast<std::size_t>(p));
    std::vector<hc::BcastSeg<std::int64_t>> segs;
    for (int root = 0; root < p; ++root) {
      auto& buf = bufs[static_cast<std::size_t>(root)];
      buf.assign(4, comm.rank() == root ? 555 + root : -1);
      segs.push_back({root, buf.data(), buf.size()});
    }
    comm.multi_broadcast(std::span<const hc::BcastSeg<std::int64_t>>(segs));
    for (int root = 0; root < p; ++root) {
      for (const auto v : bufs[static_cast<std::size_t>(root)]) {
        EXPECT_EQ(v, 555 + root);
      }
    }
  });
}

TEST_P(TransportP, SplitSubgroupCollectivesAndNestedSplit) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    const int members = p / 2 + ((p % 2) && (comm.rank() % 2 == 0) ? 1 : 0);
    EXPECT_EQ(sub.size(), members);
    std::vector<std::int64_t> data(3, 1);
    sub.allreduce(std::span(data), hc::ReduceOp::kSum);
    for (const auto v : data) EXPECT_EQ(v, members);

    // Subgroup p2p channels and a nested split out of the subgroup.
    if (sub.size() > 1) {
      auto nested = sub.split(0, -sub.rank());  // reversed key order
      EXPECT_EQ(nested.size(), sub.size());
      EXPECT_EQ(nested.rank(), sub.size() - 1 - sub.rank());
      std::vector<std::int64_t> nd(2, 1);
      nested.allreduce(std::span(nd), hc::ReduceOp::kSum);
      for (const auto v : nd) EXPECT_EQ(v, nested.size());
    }
  });
}

TEST_P(TransportP, P2pOutOfOrderTags) {
  const int p = nranks();
  if (p < 2) GTEST_SKIP();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    if (comm.rank() == 0) {
      for (const int tag : {5, 6, 7}) {
        std::vector<std::int64_t> msg(static_cast<std::size_t>(tag), tag);
        comm.send(std::span<const std::int64_t>(msg), 1, tag);
      }
    } else if (comm.rank() == 1) {
      std::vector<std::int64_t> msg;
      for (const int tag : {7, 5, 6}) {  // out of arrival order
        comm.recv(0, tag, msg);
        ASSERT_EQ(msg.size(), static_cast<std::size_t>(tag));
        for (const auto v : msg) EXPECT_EQ(v, tag);
      }
    }
    comm.barrier();
  });
}

TEST_P(TransportP, NonblockingCollectivesAndIrecv) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    std::vector<std::int64_t> sum(4, comm.rank());
    auto r1 = comm.iallreduce(std::span(sum), hc::ReduceOp::kSum);
    std::vector<std::int64_t> bc(4, comm.rank() == 0 ? 42 : -1);
    auto r2 = comm.ibroadcast(std::span(bc), 0);
    r1.wait();
    r2.wait();
    const std::int64_t want = static_cast<std::int64_t>(p) * (p - 1) / 2;
    for (const auto v : sum) EXPECT_EQ(v, want);
    for (const auto v : bc) EXPECT_EQ(v, 42);

    if (p >= 2) {
      if (comm.rank() == 1) {
        std::vector<std::int64_t> payload(6, 99);
        comm.send(std::span<const std::int64_t>(payload), 0, 31);
      } else if (comm.rank() == 0) {
        std::vector<std::int64_t> in;
        auto rr = comm.irecv(1, 31, in);
        while (!rr.test()) {
        }
        EXPECT_TRUE(rr.done());
        ASSERT_EQ(in.size(), 6u);
        for (const auto v : in) EXPECT_EQ(v, 99);
      }
    }
    comm.barrier();
  });
}

TEST_P(TransportP, ResetClocksMidRun) {
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    std::vector<std::int64_t> data(4, 1);
    comm.allreduce(std::span(data), hc::ReduceOp::kSum);
    comm.reset_clocks();
    EXPECT_EQ(comm.vclock(), 0.0);
    // The substrate must stay fully usable after the epoch reset.
    std::vector<std::int64_t> again(4, 2);
    comm.allreduce(std::span(again), hc::ReduceOp::kSum);
    for (const auto v : again) EXPECT_EQ(v, 2 * p);
    comm.barrier();
  });
}

// Algorithm-level bit-identity: BFS levels and PageRank doubles gathered on
// rank 0 must be byte-for-byte equal across backends (same combine order,
// same concatenation order — the transport refactor's core invariant).
TEST(TransportIdentity, BfsAndPagerankMatchShm) {
  const auto graph = hpcg::graph::load_dataset("rmat10", 0);
  const auto grid = hpcg::core::Grid::squarest(4);
  const auto parts = hpcg::core::Partitioned2D::build(graph, grid, true);

  struct Outputs {
    std::vector<std::int64_t> levels;
    std::vector<double> pr;
  };
  std::mutex mu;
  const auto run_one = [&](Backend backend) {
    Outputs out;
    run_backend(backend, grid.ranks(), [&](hc::Comm& comm) {
      hpcg::core::Dist2DGraph g(comm, parts);
      comm.reset_clocks();
      auto bfs = hpcg::algos::bfs(g, 0, {}, nullptr);
      auto levels = hpcg::algos::gather_row_state(
          g, std::span<const std::int64_t>(bfs.level));
      auto pr = hpcg::algos::pagerank(g, 10, 0.85, {}, nullptr);
      auto pr_full =
          hpcg::algos::gather_row_state(g, std::span<const double>(pr));
      if (comm.rank() == 0) {
        const std::lock_guard lock(mu);
        out.levels = std::move(levels);
        out.pr = std::move(pr_full);
      }
    });
    return out;
  };

  const Outputs shm = run_one(Backend::kShm);
  const Outputs socket = run_one(Backend::kSocket);
  ASSERT_EQ(shm.levels.size(), socket.levels.size());
  EXPECT_EQ(shm.levels, socket.levels);
  ASSERT_EQ(shm.pr.size(), socket.pr.size());
  // Bitwise double equality, not approximate: the combine order is pinned.
  EXPECT_EQ(0, std::memcmp(shm.pr.data(), socket.pr.data(),
                           shm.pr.size() * sizeof(double)));
}

TEST_P(TransportP, SelfSendMatchesMailboxSemantics) {
  // The shm mailbox supports send-to-self (the message lands in the rank's
  // own mailbox); the socket backend must agree, not throw.
  const int p = nranks();
  run_backend(backend(), p, [&](hc::Comm& comm) {
    const std::vector<std::int64_t> payload{10 + comm.rank(),
                                            1000 + comm.rank()};
    comm.send(std::span<const std::int64_t>(payload), comm.rank(), 5);
    std::vector<std::int64_t> got;
    comm.recv(comm.rank(), 5, got);
    EXPECT_EQ(got, payload);
  });
}

// ---------------------------------------------------------------------------
// Timeout policy (satellite): the socket backend declines the implicit
// fault-work default — liveness comes from EOF — but honors explicit ones.

TEST(SocketTimeout, ResolveTimeoutPolicy) {
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  ht::SocketTransport t1(1, 2, mesh.claim(1));
  mesh.close_all();
  EXPECT_EQ(t0.resolve_timeout(10.0, /*explicit_request=*/false), 0.0);
  EXPECT_EQ(t0.resolve_timeout(0.0, /*explicit_request=*/false), 0.0);
  EXPECT_EQ(t0.resolve_timeout(0.5, /*explicit_request=*/true), 0.5);
}

TEST(SocketTimeout, SlowButAlivePeerDoesNotTimeOut) {
  // No explicit deadline: a peer that is slow (300ms) but alive must not
  // surface as Timeout — the backend waits on EOF, not a clock.
  run_backend(Backend::kSocket, 2, [&](hc::Comm& comm) {
    std::vector<std::int64_t> msg;
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      std::vector<std::int64_t> payload(3, 7);
      comm.send(std::span<const std::int64_t>(payload), 0, 1);
    } else {
      comm.recv(1, 1, msg);
      EXPECT_EQ(msg.size(), 3u);
    }
  });
}

TEST(SocketTimeout, ExplicitDeadlineIsHonored) {
  hc::RunOptions options;
  options.comm_timeout_s = 0.1;  // explicit: resolve_timeout passes it through
  EXPECT_THROW(
      run_backend(
          Backend::kSocket, 2,
          [&](hc::Comm& comm) {
            std::vector<std::int64_t> msg;
            if (comm.rank() == 1) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1500));
              std::vector<std::int64_t> payload(1, 1);
              comm.send(std::span<const std::int64_t>(payload), 0, 1);
            } else {
              comm.recv(1, 1, msg);  // peer is 15x slower than the deadline
            }
          },
          options),
      hc::Timeout);
}

TEST(SocketTimeout, HugeExplicitDeadlineDoesNotOverflowWait) {
  // remain * 1000 for a deadline far in the future exceeds INT_MAX; the
  // poll wait must clamp instead of an out-of-range double-to-int cast.
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  ht::SocketTransport t1(1, 2, mesh.claim(1));
  mesh.close_all();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::int64_t value = 7;
    t1.send(0, ht::kP2pChannel, 3,
            std::as_bytes(std::span<const std::int64_t>(&value, 1)));
  });
  const ht::Frame f = t0.recv_any(ht::kP2pChannel, 3, /*timeout_s=*/3.0e7);
  sender.join();
  EXPECT_EQ(f.src, 1);
  EXPECT_EQ(f.payload.size(), sizeof(std::int64_t));
}

// ---------------------------------------------------------------------------
// Wire-level socket behavior.

TEST(SocketWire, PeerDeathWithoutGoodbyeIsRankFailure) {
  ht::SocketMesh mesh(2);
  auto rank0_fds = mesh.claim(0);
  auto rank1_fds = mesh.claim(1);
  ht::SocketTransport t0(0, 2, std::move(rank0_fds));
  // "Kill" rank 1: close its descriptors without constructing a transport,
  // so no goodbye frame is ever sent — exactly what SIGKILL looks like.
  for (const int fd : rank1_fds) {
    if (fd >= 0) ::close(fd);
  }
  mesh.close_all();
  EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
}

TEST(SocketWire, GoodbyeEofIsBenignAndDataStillDelivered) {
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  {
    ht::SocketTransport t1(1, 2, mesh.claim(1));
    const std::int64_t value = 1234;
    t1.send(0, ht::kP2pChannel, 9,
            std::as_bytes(std::span<const std::int64_t>(&value, 1)));
    // t1 destructs here: goodbye frame, then EOF.
  }
  mesh.close_all();
  // Data queued before the goodbye is still delivered...
  const ht::Frame f = t0.recv_any(ht::kP2pChannel, 9, 0.0);
  EXPECT_EQ(f.src, 1);
  EXPECT_EQ(f.payload.size(), sizeof(std::int64_t));
  // ...and the graceful EOF never throws.
  ht::Frame scratch;
  EXPECT_FALSE(t0.try_recv(ht::kP2pChannel, 10, &scratch));
}

TEST(SocketWire, CorruptedFramesAreRejected) {
  // Handcraft wire frames on the raw peer socket: a checksum that does not
  // match the payload must surface as RankFailure, not silent corruption.
  struct Header {
    std::uint32_t magic;
    std::int32_t src;
    std::uint64_t channel;
    std::int64_t tag;
    std::uint64_t length;
    std::uint64_t checksum;
  };
  static_assert(sizeof(Header) == 40);

  const auto send_raw = [](int fd, const Header& h, const void* payload) {
    ASSERT_EQ(::send(fd, &h, sizeof(h), 0),
              static_cast<ssize_t>(sizeof(h)));
    if (h.length > 0) {
      ASSERT_EQ(::send(fd, payload, h.length,  0),
                static_cast<ssize_t>(h.length));
    }
  };

  {  // bad checksum
    ht::SocketMesh mesh(2);
    ht::SocketTransport t0(0, 2, mesh.claim(0));
    auto rank1_fds = mesh.claim(1);
    const char payload[4] = {'a', 'b', 'c', 'd'};
    Header h{0x47435048u, 1, ht::kP2pChannel, 1, sizeof(payload),
             0xdeadbeefull};
    send_raw(rank1_fds[0], h, payload);
    EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
    for (const int fd : rank1_fds) {
      if (fd >= 0) ::close(fd);
    }
    mesh.close_all();
  }
  {  // bad magic
    ht::SocketMesh mesh(2);
    ht::SocketTransport t0(0, 2, mesh.claim(0));
    auto rank1_fds = mesh.claim(1);
    Header h{0x11111111u, 1, ht::kP2pChannel, 1, 0,
             ht::fnv1a_bytes(nullptr, 0)};
    send_raw(rank1_fds[0], h, nullptr);
    EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
    for (const int fd : rank1_fds) {
      if (fd >= 0) ::close(fd);
    }
    mesh.close_all();
  }
  {  // corrupted length near UINT64_MAX: must be rejected before the
     // availability arithmetic can wrap and read out of bounds
    ht::SocketMesh mesh(2);
    ht::SocketTransport t0(0, 2, mesh.claim(0));
    auto rank1_fds = mesh.claim(1);
    Header h{0x47435048u, 1, ht::kP2pChannel, 1,
             std::numeric_limits<std::uint64_t>::max() - 8, 0};
    // Header only — the claimed length is the lie under test.
    ASSERT_EQ(::send(rank1_fds[0], &h, sizeof(h), 0),
              static_cast<ssize_t>(sizeof(h)));
    EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
    for (const int fd : rank1_fds) {
      if (fd >= 0) ::close(fd);
    }
    mesh.close_all();
  }
  {  // huge-but-unwrappable length: must throw, not buffer forever
    ht::SocketMesh mesh(2);
    ht::SocketTransport t0(0, 2, mesh.claim(0));
    auto rank1_fds = mesh.claim(1);
    Header h{0x47435048u, 1, ht::kP2pChannel, 1, ht::kMaxFrameBytes + 1, 0};
    ASSERT_EQ(::send(rank1_fds[0], &h, sizeof(h), 0),
              static_cast<ssize_t>(sizeof(h)));
    EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
    for (const int fd : rank1_fds) {
      if (fd >= 0) ::close(fd);
    }
    mesh.close_all();
  }
}

TEST(SocketWire, OversizedSendIsRejectedAtTheSource) {
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  mesh.close_all();
  // A span wider than the frame limit must throw before any byte hits the
  // wire. The pointer is never dereferenced — validation happens first.
  static const std::byte dummy{};
  const std::span<const std::byte> too_big(&dummy, ht::kMaxFrameBytes + 1);
  EXPECT_THROW(t0.send(1, ht::kP2pChannel, 1, too_big), std::length_error);
}

TEST(SocketWire, DestructionDuringUnwindLooksLikeDeath) {
  // A rank that fails with a LOCAL exception (checkpoint I/O error,
  // bad_alloc, logic error) destroys its transport during unwind. It must
  // NOT send a goodbye: peers would treat the EOF as graceful and block
  // forever on frames the dead rank can no longer send, instead of throwing
  // RankFailure and restarting the gang.
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  try {
    ht::SocketTransport t1(1, 2, mesh.claim(1));
    throw std::runtime_error("rank 1 fails locally mid-collective");
  } catch (const std::runtime_error&) {
    // t1 destructed while the exception was in flight: no goodbye.
  }
  mesh.close_all();
  EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 1, 0.0), hc::RankFailure);
}

TEST(SocketWire, GracefulPeerMissingFrameThrowsInsteadOfHanging) {
  // A peer that finished cleanly (goodbye + EOF) can never send anything
  // more. Waiting for a frame it never sent must throw RankFailure — with
  // no deadline installed by default, blocking would hang the gang (and
  // before the fix, busy-spin at 100% CPU).
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  {
    ht::SocketTransport t1(1, 2, mesh.claim(1));
    // t1 destructs cleanly: goodbye, then EOF.
  }
  mesh.close_all();
  EXPECT_THROW(t0.recv_any(ht::kP2pChannel, 42, 0.0), hc::RankFailure);
  EXPECT_THROW(t0.recv_from(1, ht::kP2pChannel, 42, 0.0), hc::RankFailure);
}

TEST(SocketWire, SelfSendLoopsBack) {
  ht::SocketMesh mesh(2);
  ht::SocketTransport t0(0, 2, mesh.claim(0));
  mesh.close_all();
  const std::int64_t value = 77;
  t0.send(0, ht::kP2pChannel, 6,
          std::as_bytes(std::span<const std::int64_t>(&value, 1)));
  const ht::Frame f = t0.recv_from(0, ht::kP2pChannel, 6, 0.0);
  EXPECT_EQ(f.src, 0);
  ASSERT_EQ(f.payload.size(), sizeof(std::int64_t));
  std::int64_t got = 0;
  std::memcpy(&got, f.payload.data(), sizeof(got));
  EXPECT_EQ(got, 77);
  // A self frame that was never sent can also never arrive: throw, don't
  // block — self-sends are synchronous.
  EXPECT_THROW(t0.recv_from(0, ht::kP2pChannel, 7, 0.0), hc::RankFailure);
}

// ---------------------------------------------------------------------------
// FileCheckpointStore: the on-disk store behind multi-process recovery.

TEST(FileCheckpointStore, RoundTripCommitAndPrune) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("hpcg_fcs_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    hpcg::fault::FileCheckpointStore store(dir, 2);
    EXPECT_EQ(store.latest_committed(), -1);
    const std::vector<std::byte> a{std::byte{1}, std::byte{2}};
    const std::vector<std::byte> b{std::byte{9}};
    store.write(3, 0, a);
    EXPECT_THROW(store.commit(3), std::logic_error);  // rank 1 missing
    store.write(3, 1, b);
    store.commit(3);
    EXPECT_EQ(store.latest_committed(), 3);
    EXPECT_EQ(store.blob(3, 0), a);
    EXPECT_EQ(store.blob(3, 1), b);
    EXPECT_THROW(store.write(3, 0, a), std::logic_error);  // not past commit
    EXPECT_THROW(store.blob(4, 0), std::logic_error);      // not committed

    store.write(5, 0, b);
    store.write(5, 1, a);
    store.commit(5);
    EXPECT_FALSE(fs::exists(dir / "epoch3.rank0.ckpt"));  // pruned
  }
  {
    // A second store on the same directory (a restarted gang's process)
    // observes the commit.
    hpcg::fault::FileCheckpointStore store(dir, 2);
    EXPECT_EQ(store.latest_committed(), 5);
    EXPECT_EQ(store.blob(5, 1).size(), 2u);
  }
  {
    std::ofstream marker(dir / "COMMITTED", std::ios::trunc);
    marker << "not-a-number\n";
  }
  {
    hpcg::fault::FileCheckpointStore store(dir, 2);
    EXPECT_THROW(store.latest_committed(), std::runtime_error);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Process-level crash-recovery through the real launcher: kill -9 a rank
// mid-run, the gang restarts from the committed checkpoint, and the final
// output is bit-identical to a fault-free socket run (and to shm).

#ifdef HPCG_RUN_BINARY
std::string run_and_capture(const std::string& cmd, int* exit_code) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("hpcg_out_" + std::to_string(::getpid()) + ".txt"))
          .string();
  const int rc = std::system((cmd + " > " + path + " 2>&1").c_str());
  *exit_code = rc;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::filesystem::remove(path);
  return buf.str();
}

std::string result_lines(const std::string& text, const std::string& prefix) {
  std::stringstream in(text);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) out += line + "\n";
  }
  return out;
}

TEST(SocketProcess, KilledRankRecoversBitIdentical) {
  const std::string base = std::string(HPCG_RUN_BINARY) +
                           " --algo=bfs --graph=rmat10 --transport=socket"
                           " --procs=4 --checkpoint-every=1 --verify";
  int rc_clean = 0, rc_killed = 0, rc_shm = 0;
  const std::string clean = run_and_capture(base, &rc_clean);
  const std::string killed = run_and_capture(
      base + " --kill-rank=1 --kill-after=30", &rc_killed);
  const std::string shm = run_and_capture(
      std::string(HPCG_RUN_BINARY) +
          " --algo=bfs --graph=rmat10 --ranks=4 --verify",
      &rc_shm);
  EXPECT_EQ(rc_clean, 0) << clean;
  EXPECT_EQ(rc_killed, 0) << killed;
  EXPECT_EQ(rc_shm, 0) << shm;
  const std::string clean_bfs = result_lines(clean, "bfs:");
  EXPECT_FALSE(clean_bfs.empty()) << clean;
  // Killed-and-recovered output matches the fault-free run and shm exactly.
  EXPECT_EQ(clean_bfs, result_lines(killed, "bfs:")) << killed;
  EXPECT_EQ(clean_bfs, result_lines(shm, "bfs:")) << shm;
  EXPECT_NE(killed.find("verification: PASSED"), std::string::npos) << killed;
  EXPECT_NE(killed.find("gang: 1 restart(s)"), std::string::npos) << killed;
}
#endif  // HPCG_RUN_BINARY

}  // namespace

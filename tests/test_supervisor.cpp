// Serve-tier fault-tolerance tests (docs/RECOVERY.md): the Supervisor's
// crash-recovery cycle under seeded fault plans — mid-query, mid-mutation-
// commit and mid-MS-BFS-batch deaths — with the recovered results demanded
// bit-identical to a fault-free twin; the completed-xor-typed-error
// contract for every admitted request; restart-budget exhaustion to
// Unavailable; typed request deadlines; and degraded-mode shedding.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/supervisor.hpp"
#include "stream/mutation_log.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::core;
namespace hf = hpcg::fault;
namespace hs = hpcg::serve;
namespace hstream = hpcg::stream;
using hpcg::graph::Gid;
using hpcg::test::small_rmat;

namespace {

// Inline, manually pumped supervision: recovery happens deterministically
// inside pump()/drain(), never on a background thread.
hs::SupervisorOptions inline_opts() {
  hs::SupervisorOptions o;
  o.auto_recover = false;
  o.service.auto_dispatch = false;
  o.backoff_base_s = 0.0;
  return o;
}

hs::Request bfs_req(Gid root) {
  hs::Request r;
  r.algo = hs::Algo::kBfs;
  r.roots = {root};
  return r;
}

hs::Request cc_req() {
  hs::Request r;
  r.algo = hs::Algo::kCc;
  return r;
}

hs::Request pr_req(int iterations) {
  hs::Request r;
  r.algo = hs::Algo::kPageRank;
  r.iterations = iterations;
  return r;
}

hs::Request mutate_req(std::vector<hstream::EdgeOp> ops) {
  hs::Request r;
  r.algo = hs::Algo::kMutate;
  r.ops = std::move(ops);
  return r;
}

void pump_all(hs::Supervisor& s) {
  while (s.pump()) {
  }
}

std::uint64_t fired_kills(const hf::FaultInjector& injector) {
  return injector.fired(hf::FaultKind::kCrash) +
         injector.fired(hf::FaultKind::kSilent);
}

}  // namespace

TEST(Supervisor, CrashMidQueryRecoversBitIdentical) {
  const auto el = small_rmat(8, 8, 3);
  const hc::Grid grid(2, 2);

  // Fault-free twin first: the answer the recovered run must reproduce.
  hs::Response want;
  {
    hs::Supervisor twin(el, grid, inline_opts());
    auto t = twin.submit(bfs_req(5));
    pump_all(twin);
    want = t.result.get();
    EXPECT_EQ(twin.restarts(), 0);
  }

  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:s2", 7),
                             grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  hs::Supervisor sup(el, grid, opts);
  auto ticket = sup.submit(bfs_req(5));
  pump_all(sup);

  ASSERT_EQ(fired_kills(injector), 1u) << "the crash never fired";
  EXPECT_EQ(sup.restarts(), 1);
  EXPECT_EQ(sup.state(), hs::Supervisor::State::kServing);

  const hs::Response got = ticket.result.get();
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.depth, want.depth);
  EXPECT_EQ(got.epoch, want.epoch);
  // The session failure consumed one attempt; the resubmission another.
  EXPECT_GE(got.attempts, 2);

  // Observability: the recovery counters saw the cycle.
  EXPECT_GE(sup.metrics().counter("serve.recovery.restarts").value(), 1u);
  EXPECT_GE(sup.metrics().counter("serve.recovery.session_deaths").value(), 1u);
  EXPECT_GE(sup.metrics().counter("serve.recovery.resubmitted").value(), 1u);
}

TEST(Supervisor, CrashMidMutationCommitIsTransactional) {
  const auto el = small_rmat(7, 8, 11);
  const hc::Grid grid(2, 2);
  hpcg::graph::EdgeList mirror = el;
  const auto ops = hstream::generate_ops(/*seed=*/21, /*batch_index=*/0,
                                         /*count=*/24, /*delete_percent=*/40,
                                         el.n, &mirror);

  hs::Response mwant, qwant;
  hpcg::graph::EdgeList twin_mirror;
  {
    hs::Supervisor twin(el, grid, inline_opts());
    auto mt = twin.submit(mutate_req(ops));
    auto qt = twin.submit(cc_req());
    pump_all(twin);
    mwant = mt.result.get();
    qwant = qt.result.get();
    twin_mirror = twin.mirror_copy();
  }

  // A collective-seq trigger lands the crash inside the commit's exchange
  // (superstep triggers consult at span open, where the commit — the
  // session's superstep 0 — has staged nothing yet; n3 is the last
  // setup+commit collective on rank 2, i.e. mid stage-then-swap).
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r2:n3", 13),
                             grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  hs::Supervisor sup(el, grid, opts);
  auto mticket = sup.submit(mutate_req(ops));
  pump_all(sup);
  auto qticket = sup.submit(cc_req());
  pump_all(sup);

  ASSERT_EQ(fired_kills(injector), 1u) << "the crash never fired";
  EXPECT_EQ(sup.restarts(), 1);

  // The faulted commit aborted (old epoch, old CSR); its retry applied the
  // batch exactly once. Accounting, epoch, committed mirror and the
  // post-commit query all match the fault-free twin bit for bit.
  const hs::Response mgot = mticket.result.get();
  EXPECT_EQ(mgot.edges_inserted, mwant.edges_inserted);
  EXPECT_EQ(mgot.edges_deleted, mwant.edges_deleted);
  EXPECT_EQ(mgot.epoch, mwant.epoch);
  EXPECT_GE(mgot.attempts, 2);
  EXPECT_EQ(sup.epoch(), mwant.epoch);
  EXPECT_EQ(sup.mirror_copy().edges, twin_mirror.edges);

  const hs::Response qgot = qticket.result.get();
  EXPECT_EQ(qgot.component, qwant.component);
  EXPECT_EQ(qgot.n_components, qwant.n_components);
  EXPECT_EQ(qgot.epoch, qwant.epoch);
}

TEST(Supervisor, CrashMidMsBfsBatchRecoversBitIdentical) {
  const auto el = small_rmat(8, 8, 5);
  const hc::Grid grid(2, 2);
  hs::Request req;
  req.algo = hs::Algo::kMsBfs;
  req.roots = {0, 7, 19, 33};

  hs::Response want;
  {
    hs::Supervisor twin(el, grid, inline_opts());
    auto t = twin.submit(hs::Request(req));
    pump_all(twin);
    want = t.result.get();
  }

  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r3:s2", 9),
                             grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  hs::Supervisor sup(el, grid, opts);
  auto ticket = sup.submit(hs::Request(req));
  pump_all(sup);

  ASSERT_EQ(fired_kills(injector), 1u) << "the crash never fired";
  EXPECT_EQ(sup.restarts(), 1);
  const hs::Response got = ticket.result.get();
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.depth, want.depth);
}

TEST(Supervisor, PostRecoveryColdQueriesMatchFaultFreeTwin) {
  const auto el = small_rmat(7, 8, 17);
  const hc::Grid grid(2, 2);

  hs::Response bfs_want, cc_want, pr_want;
  {
    hs::Supervisor twin(el, grid, inline_opts());
    auto b = twin.submit(bfs_req(9));
    pump_all(twin);
    auto c = twin.submit(cc_req());
    auto p = twin.submit(pr_req(8));
    pump_all(twin);
    bfs_want = b.result.get();
    cc_want = c.result.get();
    pr_want = p.result.get();
  }

  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r0:s2", 3),
                             grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  hs::Supervisor sup(el, grid, opts);
  auto b = sup.submit(bfs_req(9));
  pump_all(sup);  // crash + recovery happen here
  ASSERT_EQ(sup.restarts(), 1);

  // Cold queries against the REBUILT session: fixed-iteration PageRank,
  // CC and BFS must be bit-identical to the twin that never crashed.
  auto c = sup.submit(cc_req());
  auto p = sup.submit(pr_req(8));
  pump_all(sup);
  EXPECT_EQ(b.result.get().levels, bfs_want.levels);
  EXPECT_EQ(c.result.get().component, cc_want.component);
  EXPECT_EQ(c.result.get().n_components, cc_want.n_components);
  EXPECT_EQ(p.result.get().rank, pr_want.rank);
}

TEST(Supervisor, NoAdmittedRequestSilentlyDropped) {
  const auto el = small_rmat(7, 8, 23);
  const hc::Grid grid(2, 2);
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:s3", 29),
                             grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  // All 12 requests share the default "anon" client; lift the per-client
  // quota so admission is not what this test measures.
  opts.service.max_inflight_per_client = 64;
  hs::Supervisor sup(el, grid, opts);

  hpcg::graph::EdgeList mirror = el;
  std::vector<hs::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(sup.submit(bfs_req(static_cast<Gid>(i * 11 % el.n))));
    tickets.push_back(sup.submit(cc_req()));
    auto ops = hstream::generate_ops(31, static_cast<std::uint64_t>(i), 6, 30,
                                     el.n, &mirror);
    hstream::apply_to_edge_list(mirror, ops);
    tickets.push_back(sup.submit(mutate_req(std::move(ops))));
  }
  sup.drain();
  ASSERT_GE(fired_kills(injector), 1u) << "the crash never fired";

  // Every admitted request resolves exactly one way: a value or a typed
  // ServeError. An untyped exception (or a hang) is the dropped-request
  // bug this test exists to catch.
  int completed = 0, failed = 0;
  for (auto& t : tickets) {
    try {
      (void)t.result.get();
      ++completed;
    } catch (const hs::ServeError&) {
      ++failed;
    }
  }
  EXPECT_EQ(completed + failed, static_cast<int>(tickets.size()));
  EXPECT_GT(completed, 0);
}

TEST(Supervisor, RestartBudgetExhaustionGoesUnavailable) {
  const auto el = small_rmat(7, 8, 13);
  const hc::Grid grid(2, 2);
  // Two one-shot crashes: the first consumes the whole restart budget
  // (max_restarts = 1); the second death must surface Unavailable, not a
  // crash loop.
  hf::FaultInjector injector(
      hf::FaultPlan::parse("crash@r0:s1,crash@r0:s2", 5), grid.ranks());
  auto opts = inline_opts();
  opts.session.faults = &injector;
  opts.max_restarts = 1;
  opts.restart_window_s = 3600.0;
  hs::Supervisor sup(el, grid, opts);

  // Both admitted before the first death: the budget can be exhausted
  // within a single pump cycle (crash -> restart -> crash on the adopted
  // retry), so submitting after pumping would already be rejected.
  auto t1 = sup.submit(bfs_req(3));
  auto t2 = sup.submit(cc_req());
  pump_all(sup);
  sup.drain();

  ASSERT_EQ(fired_kills(injector), 2u);
  EXPECT_EQ(sup.state(), hs::Supervisor::State::kUnavailable);
  EXPECT_EQ(sup.restarts(), 1);

  // In-flight requests fail typed; new submissions are rejected typed.
  int unavailable = 0;
  for (auto* t : {&t1, &t2}) {
    try {
      (void)t->result.get();
    } catch (const hs::Unavailable&) {
      ++unavailable;
    }
  }
  EXPECT_GE(unavailable, 1);
  EXPECT_THROW((void)sup.submit(bfs_req(0)), hs::Unavailable);
  EXPECT_GE(sup.metrics().counter("serve.recovery.unavailable").value(), 1u);
}

TEST(Supervisor, UnavailableResolvesRequestsParkedDuringRecovery) {
  const auto el = small_rmat(7, 8, 29);
  const hc::Grid grid(2, 2);
  // Stacked duplicate crashes: the second fires on the rebuilt session's
  // replay, exhausting the whole budget (max_restarts = 1).
  hf::FaultInjector injector(
      hf::FaultPlan::parse("crash@r0:s1,crash@r0:s1", 11), grid.ranks());
  hs::SupervisorOptions opts;  // background recovery + auto dispatch
  opts.session.faults = &injector;
  opts.max_restarts = 1;
  hs::Supervisor sup(el, grid, opts);

  // Race submissions against the death -> unavailable transition: some
  // land in the degraded parking lot mid-recovery. Every one of those
  // tickets must still resolve (regression: go_unavailable used to leak
  // parks that arrived after its harvest, hanging their futures).
  std::vector<hs::Ticket> tickets;
  for (int i = 0;
       i < 500 && sup.state() != hs::Supervisor::State::kUnavailable; ++i) {
    try {
      tickets.push_back(sup.submit(bfs_req(static_cast<Gid>(i) % el.n)));
    } catch (const hs::ServeError&) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  sup.drain();
  EXPECT_EQ(sup.state(), hs::Supervisor::State::kUnavailable);
  for (auto& t : tickets) {
    ASSERT_EQ(t.result.wait_for(std::chrono::seconds(5)),
              std::future_status::ready)
        << "an admitted ticket never resolved";
    try {
      (void)t.result.get();
    } catch (const hs::ServeError&) {
    }
  }
}

TEST(Service, ExpiredDeadlineFailsTypedBeforeExecuting) {
  const auto el = small_rmat(7, 8, 19);
  hs::Session session(el, hc::Grid(2, 2));
  hs::ServiceOptions vopts;
  vopts.auto_dispatch = false;
  hs::Service service(session, vopts);

  hs::Request req = bfs_req(1);
  req.deadline_s = 1e-4;
  auto late = service.submit(std::move(req));
  auto fine = service.submit(bfs_req(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  while (service.pump()) {
  }
  EXPECT_THROW((void)late.result.get(), hs::DeadlineExceeded);
  EXPECT_EQ(fine.result.get().levels.size(), 1u);
  service.stop();
}

TEST(Supervisor, WatermarkShedsNonCacheableWhileServing) {
  const auto el = small_rmat(7, 8, 29);
  auto opts = inline_opts();
  opts.degrade_queue_watermark = 1;
  hs::Supervisor sup(el, hc::Grid(2, 2), opts);

  auto q = sup.submit(bfs_req(2));  // queue depth reaches the watermark
  try {
    (void)sup.submit(mutate_req({{hstream::EdgeOpKind::kInsert, 0, 1}}));
    FAIL() << "expected Overloaded(kDegraded)";
  } catch (const hs::Overloaded& e) {
    EXPECT_EQ(e.reason(), hs::Overloaded::Reason::kDegraded);
  }
  EXPECT_GE(sup.metrics().counter("serve.degraded.shed").value(), 1u);
  pump_all(sup);
  EXPECT_EQ(q.result.get().levels.size(), 1u);  // cacheable work unaffected
}

TEST(Supervisor, RecoveryWindowShedsMutationsAndParksQueries) {
  const auto el = small_rmat(8, 8, 31);
  const hc::Grid grid(2, 2);
  hf::FaultInjector injector(hf::FaultPlan::parse("crash@r1:s2", 41),
                             grid.ranks());
  hs::SupervisorOptions opts;
  opts.session.faults = &injector;
  opts.auto_recover = true;
  opts.service.auto_dispatch = true;
  // A long backoff holds the supervisor in kRecovering so the test can
  // deterministically submit into the degraded window.
  opts.backoff_base_s = 0.5;
  opts.backoff_max_s = 0.5;
  hs::Supervisor sup(el, grid, opts);

  auto crashed = sup.submit(bfs_req(4));  // dispatcher executes -> crash
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sup.state() != hs::Supervisor::State::kRecovering) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "crash never flagged a recovery";
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Degraded admission: mutations shed typed, cacheable queries parked
  // supervisor-side and adopted by the rebuilt service.
  try {
    (void)sup.submit(mutate_req({{hstream::EdgeOpKind::kInsert, 0, 1}}));
    FAIL() << "expected Overloaded(kDegraded)";
  } catch (const hs::Overloaded& e) {
    EXPECT_EQ(e.reason(), hs::Overloaded::Reason::kDegraded);
  }
  auto parked = sup.submit(bfs_req(6));
  sup.drain();

  EXPECT_EQ(sup.restarts(), 1);
  const hs::Response first = crashed.result.get();   // retried to completion
  EXPECT_GE(first.attempts, 2);
  const hs::Response adopted = parked.result.get();  // parked, then served
  EXPECT_EQ(adopted.levels.size(), 1u);
  EXPECT_GE(sup.metrics().counter("serve.degraded.parked").value(), 1u);
  EXPECT_GE(sup.metrics().counter("serve.degraded.shed").value(), 1u);
  sup.stop();
}

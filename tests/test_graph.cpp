// Graph substrate: edge-list transforms, CSR, generators, striped
// relabeling, dataset analogs, and I/O round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"

namespace hg = hpcg::graph;

namespace {

TEST(EdgeList, SymmetrizeAndSelfLoops) {
  hg::EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {2, 2}, {3, 4}, {1, 0}};
  hg::remove_self_loops(el);
  EXPECT_EQ(el.m(), 3);
  hg::symmetrize(el);
  EXPECT_EQ(el.m(), 6);
  hg::sort_and_dedup(el);
  // (0,1) and (1,0) each appeared twice.
  EXPECT_EQ(el.m(), 4);
}

TEST(EdgeList, SymmetricWeightsAgreeAcrossDirections) {
  hg::EdgeList el;
  el.n = 10;
  el.edges = {{0, 1}, {2, 7}, {5, 3}};
  hg::attach_symmetric_weights(el, 99);
  hg::symmetrize(el);
  // Weight of (u,v) equals weight of (v,u).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(el.weights[i], el.weights[i + 3]);
    EXPECT_GT(el.weights[i], 0.0);
    EXPECT_LE(el.weights[i], 1.0);
  }
}

TEST(Csr, BuildsOffsetsAndAdjacency) {
  hg::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {0, 2}, {2, 3}, {3, 0}, {0, 3}};
  hg::Csr csr(el.n, el.edges);
  EXPECT_EQ(csr.n(), 4);
  EXPECT_EQ(csr.m(), 5);
  EXPECT_EQ(csr.degree(0), 3);
  EXPECT_EQ(csr.degree(1), 0);
  EXPECT_EQ(csr.degree(2), 1);
  const auto neighbors = csr.neighbors(0);
  EXPECT_EQ(std::set<hg::Gid>(neighbors.begin(), neighbors.end()),
            (std::set<hg::Gid>{1, 2, 3}));
}

TEST(Csr, CarriesWeights) {
  hg::EdgeList el;
  el.n = 3;
  el.edges = {{0, 1}, {0, 2}, {1, 2}};
  el.weights = {0.5, 0.25, 0.125};
  hg::Csr csr(el.n, el.edges, el.weights);
  ASSERT_TRUE(csr.weighted());
  const auto w = csr.neighbor_weights(0);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
}

TEST(Csr, RejectsOutOfRangeSource) {
  hg::EdgeList el;
  el.n = 2;
  el.edges = {{5, 0}};
  EXPECT_THROW(hg::Csr(el.n, el.edges), std::out_of_range);
}

TEST(Generators, RmatSizesAndSkew) {
  hg::RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  auto el = hg::generate_rmat(params);
  EXPECT_EQ(el.n, 1 << 12);
  EXPECT_EQ(el.m(), 8 * (1 << 12));
  for (const auto& e : el.edges) {
    EXPECT_GE(e.u, 0);
    EXPECT_LT(e.u, el.n);
    EXPECT_GE(e.v, 0);
    EXPECT_LT(e.v, el.n);
  }
  // Power-law skew: the maximum degree should far exceed the average.
  const auto deg = hg::out_degrees(el);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 8 * 10);
}

TEST(Generators, RmatIsDeterministic) {
  hg::RmatParams params;
  params.scale = 10;
  params.seed = 7;
  const auto a = hg::generate_rmat(params);
  const auto b = hg::generate_rmat(params);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Generators, ErdosRenyiIsUniformish) {
  auto el = hg::generate_erdos_renyi(1 << 12, 16 << 12, 3);
  EXPECT_EQ(el.m(), 16 << 12);
  const auto deg = hg::out_degrees(el);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  // Poisson(16): max degree stays within a small multiple of the mean.
  EXPECT_LT(max_deg, 16 * 5);
}

TEST(Generators, PrefAttachHubs) {
  auto el = hg::generate_pref_attach(4096, 8, 0.8, 11);
  const auto deg = hg::out_degrees(el);
  std::vector<std::int64_t> total(deg.size(), 0);
  for (const auto& e : el.edges) {
    ++total[static_cast<std::size_t>(e.u)];
    ++total[static_cast<std::size_t>(e.v)];
  }
  const auto max_deg = *std::max_element(total.begin(), total.end());
  EXPECT_GT(max_deg, 8 * 20);  // heavy hubs
}

TEST(Generators, ForestPathGrid) {
  auto forest = hg::generate_forest(100, 10, 5);
  EXPECT_EQ(forest.m(), 90);  // one parent edge per non-root
  for (const auto& e : forest.edges) EXPECT_LT(e.v, e.u);

  auto path = hg::generate_path(7);
  EXPECT_EQ(path.m(), 6);

  auto grid = hg::generate_grid(4, 5);
  EXPECT_EQ(grid.n, 20);
  EXPECT_EQ(grid.m(), 4 * 4 + 3 * 5);  // horizontal + vertical
}

class StripedRelabelP : public ::testing::TestWithParam<std::pair<hg::Gid, int>> {};

TEST_P(StripedRelabelP, IsBijectionWithContiguousGroups) {
  const auto [n, groups] = GetParam();
  hg::StripedRelabel relabel(n, groups);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (hg::Gid v = 0; v < n; ++v) {
    const hg::Gid s = relabel.to_new(v);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, n);
    ASSERT_FALSE(seen[static_cast<std::size_t>(s)]) << "collision at " << v;
    seen[static_cast<std::size_t>(s)] = true;
    EXPECT_EQ(relabel.to_original(s), v);
    // Round-robin: vertex v belongs to group v % groups.
    EXPECT_EQ(relabel.group_of_new(s), static_cast<int>(v % groups));
    EXPECT_GE(s, relabel.group_start(static_cast<int>(v % groups)));
  }
  hg::Gid total = 0;
  for (int g = 0; g < groups; ++g) total += relabel.group_count(g);
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StripedRelabelP,
    ::testing::Values(std::pair<hg::Gid, int>{16, 4}, std::pair<hg::Gid, int>{17, 4},
                      std::pair<hg::Gid, int>{100, 7}, std::pair<hg::Gid, int>{5, 5},
                      std::pair<hg::Gid, int>{1000, 1},
                      std::pair<hg::Gid, int>{64, 64}));

TEST(Datasets, CatalogAndAnalogsLoad) {
  EXPECT_EQ(hg::dataset_catalog().size(), 5u);
  for (const auto& name : {"tw-mini", "cw-mini", "rmat10", "rand10"}) {
    auto el = hg::load_dataset(name, /*scale_shift=*/-4);
    EXPECT_GT(el.n, 0) << name;
    EXPECT_GT(el.m(), el.n) << name;
    for (const auto& e : el.edges) {
      EXPECT_NE(e.u, e.v) << "self loop survived in " << name;
    }
  }
  EXPECT_THROW(hg::load_dataset("nope"), std::invalid_argument);
}

TEST(Io, TextRoundTrip) {
  hg::EdgeList el;
  el.n = 9;
  el.edges = {{0, 1}, {7, 8}, {3, 3}};
  const auto path = std::filesystem::temp_directory_path() / "hpcg_io_test.txt";
  hg::write_text(el, path.string());
  const auto back = hg::read_text(path.string());
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);
  std::filesystem::remove(path);
}

TEST(Io, BinaryRoundTripWithWeights) {
  hg::EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {2, 3}};
  el.weights = {0.5, 2.0};
  const auto path = std::filesystem::temp_directory_path() / "hpcg_io_test.bin";
  hg::write_binary(el, path.string());
  const auto back = hg::read_binary(path.string());
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);
  EXPECT_EQ(back.weights, el.weights);
  std::filesystem::remove(path);
}

}  // namespace

// Utility layer: PRNG, prefix scans + owner search, the GPU-style counting
// hash table, option parsing, and table output.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "util/hash_table.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/scan.hpp"
#include "util/table.hpp"

namespace hu = hpcg::util;

namespace {

TEST(Prng, SplitmixMixesAndIsDeterministic) {
  EXPECT_EQ(hu::splitmix64(1), hu::splitmix64(1));
  EXPECT_NE(hu::splitmix64(1), hu::splitmix64(2));
  // Avalanche smoke test: single-bit input change flips many output bits.
  const auto diff = hu::splitmix64(0x1000) ^ hu::splitmix64(0x1001);
  EXPECT_GT(std::popcount(diff), 16);
}

TEST(Prng, XoshiroUniformity) {
  hu::Xoshiro256 rng(7);
  // next_double in [0, 1); next_below respects the bound; rough uniformity.
  std::array<int, 10> buckets{};
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    ++buckets[static_cast<std::size_t>(d * 10)];
  }
  for (const auto count : buckets) {
    EXPECT_GT(count, 1600);
    EXPECT_LT(count, 2400);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Prng, SameSeedSameStream) {
  hu::Xoshiro256 a(99);
  hu::Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Scan, ExclusiveAndInclusive) {
  std::vector<std::int64_t> data{3, 1, 4, 1, 5};
  auto copy = data;
  EXPECT_EQ(hu::exclusive_scan_inplace(std::span(copy)), 14);
  EXPECT_EQ(copy, (std::vector<std::int64_t>{0, 3, 4, 8, 9}));
  copy = data;
  EXPECT_EQ(hu::inclusive_scan_inplace(std::span(copy)), 14);
  EXPECT_EQ(copy, (std::vector<std::int64_t>{3, 4, 8, 9, 14}));
}

TEST(Scan, OwnerOfMapsWorkItemsToOwners) {
  // Offsets for degrees {2, 0, 3, 1}: owners of flat items 0..5.
  const std::vector<std::int64_t> offsets{0, 2, 2, 5};
  const std::span<const std::int64_t> view(offsets);
  EXPECT_EQ(hu::owner_of(view, std::int64_t{0}), 0u);
  EXPECT_EQ(hu::owner_of(view, std::int64_t{1}), 0u);
  EXPECT_EQ(hu::owner_of(view, std::int64_t{2}), 2u);  // degree-0 vertex skipped
  EXPECT_EQ(hu::owner_of(view, std::int64_t{4}), 2u);
}

TEST(HashTable, CountsAndMode) {
  hu::CountingHashTable table(8);
  EXPECT_TRUE(table.add(100));
  EXPECT_TRUE(table.add(200, 3));
  EXPECT_TRUE(table.add(100, 2));
  EXPECT_EQ(table.count(100), 3u);
  EXPECT_EQ(table.count(200), 3u);
  EXPECT_EQ(table.count(999), 0u);
  // Tie at 3: smaller key wins (LP determinism).
  EXPECT_EQ(table.mode(), 100u);
  table.add(200);
  EXPECT_EQ(table.mode(), 200u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(HashTable, SerializeRoundTrip) {
  hu::CountingHashTable table(16);
  for (std::uint64_t k = 0; k < 10; ++k) table.add(k * 7919, k + 1);
  std::vector<std::uint64_t> flat;
  table.serialize(flat);
  ASSERT_EQ(flat.size(), 20u);
  hu::CountingHashTable rebuilt(16);
  for (std::size_t i = 0; i < flat.size(); i += 2) rebuilt.add(flat[i], flat[i + 1]);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(rebuilt.count(k * 7919), k + 1);
  }
}

TEST(HashTable, SaturationReportsFalse) {
  hu::CountingHashTable table(2);  // 8 slots
  std::size_t inserted = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (table.add(k)) ++inserted;
  }
  EXPECT_EQ(inserted, table.slot_count());
  EXPECT_FALSE(table.add(1234567));
}

TEST(HashTable, ClearResets) {
  hu::CountingHashTable table(4);
  table.add(42, 5);
  table.clear();
  EXPECT_EQ(table.count(42), 0u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.mode(), hu::CountingHashTable::kEmptyKey);
  EXPECT_TRUE(table.add(43));
}

TEST(HashTable, EmptyModeIsSentinel) {
  hu::CountingHashTable table(4);
  EXPECT_EQ(table.mode(), hu::CountingHashTable::kEmptyKey);
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--flag",
                        "--list=1,2,3"};
  hu::Options options(6, const_cast<char**>(argv));
  EXPECT_EQ(options.get_int("alpha", 0), 3);
  EXPECT_EQ(options.get_int("beta", 0), 7);
  EXPECT_TRUE(options.get_bool("flag", false));
  EXPECT_EQ(options.get_int_list("list", {}),
            (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(options.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(options.get_double("gamma", 2.5), 2.5);
  options.check_unknown();  // everything was declared
}

TEST(Table, AlignsAndEmitsCsv) {
  hu::Table table({"name", "value"});
  table.row() << "x" << 42;
  table.row() << "longer-name" << 3.25;
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);

  const auto path = std::string("/tmp/hpcg_table_test.csv");
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "x,42");
  std::remove(path.c_str());
}

}  // namespace

// Streaming mutation tests (docs/STREAMING.md): the MutationLog staging
// buffer, the collective epoch commit against a live Dist2DGraph
// (including batches whose endpoints land on remote ranks), and the
// incremental maintenance kernels' agreement with from-scratch runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <sstream>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/incremental.hpp"
#include "algos/pagerank.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "stream/commit.hpp"
#include "stream/mutation_log.hpp"
#include "test_helpers.hpp"

namespace hpcg {
namespace {

using stream::EdgeOp;
using stream::EdgeOpKind;

std::vector<graph::Edge> csr_edges_sorted(const graph::Csr& csr) {
  const auto offsets = csr.offsets();
  const auto adj = csr.adjacencies();
  std::vector<graph::Edge> out;
  out.reserve(static_cast<std::size_t>(csr.m()));
  for (core::Lid v = 0; v < csr.n(); ++v) {
    for (std::int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      out.push_back({v, adj[e]});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.u, a.v) < std::tie(b.u, b.v);
  });
  return out;
}

TEST(MutationLog, FifoAppendAndDrain) {
  stream::MutationLog log;
  log.append({EdgeOpKind::kInsert, 1, 2});
  const std::vector<EdgeOp> more = {{EdgeOpKind::kDelete, 3, 4},
                                    {EdgeOpKind::kInsert, 5, 6}};
  log.append(std::span<const EdgeOp>(more));
  EXPECT_EQ(log.size(), 3u);

  const auto first = log.drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], (EdgeOp{EdgeOpKind::kInsert, 1, 2}));
  EXPECT_EQ(first[1], (EdgeOp{EdgeOpKind::kDelete, 3, 4}));
  const auto rest = log.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], (EdgeOp{EdgeOpKind::kInsert, 5, 6}));
  EXPECT_TRUE(log.empty());
}

TEST(MutationLog, ValidateRejectsBadOps) {
  const std::vector<EdgeOp> out_of_range = {{EdgeOpKind::kInsert, 0, 9}};
  EXPECT_THROW(stream::validate_ops(out_of_range, 4), std::invalid_argument);
  const std::vector<EdgeOp> negative = {{EdgeOpKind::kInsert, -1, 2}};
  EXPECT_THROW(stream::validate_ops(negative, 4), std::invalid_argument);
  const std::vector<EdgeOp> self_loop = {{EdgeOpKind::kDelete, 2, 2}};
  EXPECT_THROW(stream::validate_ops(self_loop, 4), std::invalid_argument);
  const std::vector<EdgeOp> fine = {{EdgeOpKind::kInsert, 0, 3}};
  EXPECT_NO_THROW(stream::validate_ops(fine, 4));
}

TEST(MutationLog, GenerateOpsIsDeterministic) {
  auto el = test::small_er(64, 128, 7);
  const auto a = stream::generate_ops(11, 3, 20, 30, el.n, &el);
  const auto b = stream::generate_ops(11, 3, 20, 30, el.n, &el);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_NO_THROW(stream::validate_ops(a, el.n));
  // Different batch index -> a different (seeded) batch.
  const auto c = stream::generate_ops(11, 4, 20, 30, el.n, &el);
  EXPECT_NE(a, c);
  // Degenerate vertex set: nothing to mutate.
  EXPECT_TRUE(stream::generate_ops(11, 0, 20, 30, /*n=*/1).empty());
}

TEST(MutationLog, HostApplyDuplicateInsertsAndStructuralDeletes) {
  graph::EdgeList el;
  el.n = 4;

  // Duplicate inserts are parallel copies, each adding both directions.
  const std::vector<EdgeOp> inserts = {{EdgeOpKind::kInsert, 0, 1},
                                       {EdgeOpKind::kInsert, 0, 1}};
  auto r = stream::apply_to_edge_list(el, inserts);
  EXPECT_EQ(r.inserted, 4);
  EXPECT_FALSE(r.structural_delete);
  EXPECT_EQ(el.m(), 4);

  // Deleting one copy leaves the other: not structural.
  const std::vector<EdgeOp> del = {{EdgeOpKind::kDelete, 0, 1}};
  r = stream::apply_to_edge_list(el, del);
  EXPECT_EQ(r.deleted, 2);
  EXPECT_FALSE(r.structural_delete);
  EXPECT_EQ(el.m(), 2);

  // Deleting the last copy is structural.
  r = stream::apply_to_edge_list(el, del);
  EXPECT_EQ(r.deleted, 2);
  EXPECT_TRUE(r.structural_delete);
  EXPECT_EQ(el.m(), 0);

  // Deleting an absent edge is a per-direction no-op.
  const std::vector<EdgeOp> absent = {{EdgeOpKind::kDelete, 2, 3}};
  r = stream::apply_to_edge_list(el, absent);
  EXPECT_EQ(r.deleted, 0);
  EXPECT_EQ(r.noop_deletes, 2);
  EXPECT_FALSE(r.structural_delete);
}

TEST(StreamCommit, EmptyAndAllNoopBatchesKeepEpoch) {
  auto el = test::small_er(32, 64, 3);
  test::run_on_grid(el, core::Grid(2, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    EXPECT_EQ(g.epoch(), 0u);
    const auto m0 = g.m_global();

    const auto empty = stream::commit(g, {});
    EXPECT_FALSE(empty.mutated);
    EXPECT_EQ(empty.epoch, 0u);
    EXPECT_EQ(g.epoch(), 0u);

    // Delete a pair that cannot exist: both directions no-op everywhere.
    graph::EdgeList mirror = el;
    std::vector<EdgeOp> ops = {{EdgeOpKind::kDelete, 0, 1}};
    while (true) {
      const auto host = stream::apply_to_edge_list(mirror, ops);
      if (host.deleted == 0) break;  // now absent; retry commits as no-op
    }
    const auto noop = stream::commit(g, ops);
    EXPECT_FALSE(noop.mutated);
    EXPECT_EQ(noop.noop_deletes, 2);
    EXPECT_EQ(g.epoch(), 0u);
    EXPECT_EQ(g.m_global(), m0);
  });
}

TEST(StreamCommit, TracksCountsEpochAndMirrorMultiset) {
  auto el = test::small_er(48, 96, 5);
  const core::Grid grid(2, 2);
  // Three seeded batches with a delete mix; the mirror evolves in
  // lockstep, so endpoints cover local, ghost, and fully remote ranks.
  graph::EdgeList mirror = el;
  std::vector<std::vector<EdgeOp>> batches;
  std::vector<stream::HostApplyResult> host;
  for (std::uint64_t b = 0; b < 3; ++b) {
    batches.push_back(stream::generate_ops(99, b, 12, 40, el.n, &mirror));
    host.push_back(stream::apply_to_edge_list(mirror, batches.back()));
  }
  const auto parts_after = core::Partitioned2D::build(mirror, grid);

  test::run_on_grid(el, grid, [&](comm::Comm& comm, core::Dist2DGraph& g) {
    std::uint64_t expected_epoch = 0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const auto cr = stream::commit(g, batches[b]);
      EXPECT_EQ(cr.inserted, host[b].inserted);
      EXPECT_EQ(cr.deleted, host[b].deleted);
      EXPECT_EQ(cr.noop_deletes, host[b].noop_deletes);
      EXPECT_EQ(cr.structural_delete, host[b].structural_delete);
      if (cr.mutated) ++expected_epoch;
      EXPECT_EQ(g.epoch(), expected_epoch);
      EXPECT_EQ(cr.epoch, expected_epoch);
    }
    EXPECT_EQ(g.m_global(), mirror.m());

    // The mutated distributed multiset must equal a fresh partition of the
    // mirror (order-insensitive: commit order differs from build order).
    const auto& lids = g.lids();
    std::vector<graph::Edge> expected;
    for (const auto& e : parts_after.edges_of(comm.rank())) {
      expected.push_back({lids.row_lid(e.u), lids.col_lid(e.v)});
    }
    std::sort(expected.begin(), expected.end(), [](const auto& a, const auto& b) {
      return std::tie(a.u, a.v) < std::tie(b.u, b.v);
    });
    EXPECT_EQ(csr_edges_sorted(g.csr()), expected);
  });
}

TEST(StreamCommit, RejectsWeightedGraphsAndBadOps) {
  auto el = test::small_er(16, 32, 9, /*weighted=*/true);
  test::run_on_grid(el, core::Grid(1, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    const std::vector<EdgeOp> ops = {{EdgeOpKind::kInsert, 0, 1}};
    EXPECT_THROW(stream::commit(g, ops), std::invalid_argument);
  });
  auto plain = test::small_er(16, 32, 9);
  test::run_on_grid(plain, core::Grid(1, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    const std::vector<EdgeOp> ops = {{EdgeOpKind::kInsert, 0, 99}};
    EXPECT_THROW(stream::commit(g, ops), std::invalid_argument);
    EXPECT_EQ(g.epoch(), 0u);  // nothing applied
  });
}

TEST(StreamIncremental, CcBitIdenticalAcrossInsertBatches) {
  auto el = test::small_rmat(7, 6, 21);
  test::run_on_grid(el, core::Grid(2, 3), [&](comm::Comm&, core::Dist2DGraph& g) {
    auto prev = algos::connected_components(g).label;
    for (std::uint64_t b = 0; b < 3; ++b) {
      const auto ops = stream::generate_ops(5, b, 10, /*delete_percent=*/0, el.n);
      const auto cr = stream::commit(g, ops);
      ASSERT_FALSE(cr.structural_delete);
      auto inc = algos::incremental_cc(g, prev, cr.local_inserts,
                                       cr.structural_delete);
      EXPECT_FALSE(inc.fell_back);
      const auto scratch = algos::connected_components(g);
      EXPECT_EQ(inc.label, scratch.label) << "batch " << b;
      prev = std::move(inc.label);
    }
  });
}

TEST(StreamIncremental, CcFallsBackOnStructuralDelete) {
  auto el = test::small_er(64, 160, 13);
  // Delete an edge with no parallel copy: removing it is structural.
  const auto single = std::find_if(
      el.edges.begin(), el.edges.end(), [&](const graph::Edge& e) {
        return std::count(el.edges.begin(), el.edges.end(), e) == 1;
      });
  ASSERT_NE(single, el.edges.end());
  const std::vector<EdgeOp> ops = {{EdgeOpKind::kDelete, single->u, single->v}};
  test::run_on_grid(el, core::Grid(2, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    auto prev = algos::connected_components(g).label;
    const auto cr = stream::commit(g, ops);
    ASSERT_TRUE(cr.structural_delete);
    auto inc =
        algos::incremental_cc(g, prev, cr.local_inserts, cr.structural_delete);
    EXPECT_TRUE(inc.fell_back);
    EXPECT_EQ(inc.label, algos::connected_components(g).label);
  });
}

TEST(StreamIncremental, BfsRepairBitIdenticalAcrossBatches) {
  auto el = test::small_rmat(7, 5, 33);
  const graph::Gid root = 1;
  test::run_on_grid(el, core::Grid(2, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    auto prev = algos::bfs(g, root);
    auto level = std::move(prev.level);
    for (std::uint64_t b = 0; b < 3; ++b) {
      const auto ops = stream::generate_ops(6, b, 8, /*delete_percent=*/0, el.n);
      const auto cr = stream::commit(g, ops);
      ASSERT_FALSE(cr.structural_delete);
      auto rep = algos::bfs_repair(g, root, level, cr.local_inserts,
                                   cr.structural_delete);
      EXPECT_FALSE(rep.fell_back);
      const auto scratch = algos::bfs(g, root);
      EXPECT_EQ(rep.level, scratch.level) << "batch " << b;
      EXPECT_EQ(rep.depth, scratch.depth) << "batch " << b;
      level = std::move(rep.level);
    }
  });
}

TEST(StreamIncremental, BfsRepairFallsBackOnStructuralDelete) {
  auto el = test::small_er(64, 160, 17);
  const auto single = std::find_if(
      el.edges.begin(), el.edges.end(), [&](const graph::Edge& e) {
        return std::count(el.edges.begin(), el.edges.end(), e) == 1;
      });
  ASSERT_NE(single, el.edges.end());
  const std::vector<EdgeOp> ops = {{EdgeOpKind::kDelete, single->u, single->v}};
  test::run_on_grid(el, core::Grid(2, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    auto prev = algos::bfs(g, 0);
    const auto cr = stream::commit(g, ops);
    ASSERT_TRUE(cr.structural_delete);
    auto rep = algos::bfs_repair(g, 0, prev.level, cr.local_inserts,
                                 cr.structural_delete);
    EXPECT_TRUE(rep.fell_back);
    const auto scratch = algos::bfs(g, 0);
    EXPECT_EQ(rep.level, scratch.level);
    EXPECT_EQ(rep.depth, scratch.depth);
  });
}

TEST(StreamIncremental, DeltaPagerankAgreesWithColdRun) {
  auto el = test::small_rmat(6, 6, 41);
  test::run_on_grid(el, core::Grid(2, 2), [&](comm::Comm&, core::Dist2DGraph& g) {
    const double tol = 1e-12;
    auto prev = algos::pagerank_tolerance(g, tol).rank;
    for (std::uint64_t b = 0; b < 2; ++b) {
      const auto ops = stream::generate_ops(8, b, 6, 25, el.n);
      stream::commit(g, ops);
      auto delta = algos::delta_pagerank(g, prev, tol);
      EXPECT_TRUE(delta.seeded);
      const auto cold = algos::pagerank_tolerance(g, tol);
      ASSERT_EQ(delta.rank.size(), cold.rank.size());
      for (std::size_t i = 0; i < cold.rank.size(); ++i) {
        EXPECT_NEAR(delta.rank[i], cold.rank[i], 1e-9);
      }
      // The warm start is the whole point: it must not converge slower.
      EXPECT_LE(delta.iterations, cold.iterations);
      prev = std::move(delta.rank);
    }
  });
}

// --- serve-layer integration: epochs, cache invalidation, scheduling -----

TEST(ResultCacheEpoch, InvalidateEpochEvictsStaleEntries) {
  serve::ResultCache cache(8);
  const auto resp = [](std::uint64_t id) {
    auto r = std::make_shared<serve::Response>();
    r->id = id;
    return std::shared_ptr<const serve::Response>(std::move(r));
  };
  cache.put("a", resp(1), 0);
  cache.put("b", resp(2), 1);
  cache.put("c", resp(3), 2);
  ASSERT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.invalidate_epoch(1), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  ASSERT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.get("c")->id, 3u);
  // Idempotent: nothing stale remains.
  EXPECT_EQ(cache.invalidate_epoch(1), 0u);
}

TEST(StreamServe, MutateAdvancesEpochAndNeverServesStaleCache) {
  const auto el = test::small_rmat(7, 8, 11);
  serve::Session session(el, core::Grid(2, 2));
  serve::ServiceOptions opts;
  opts.auto_dispatch = false;
  serve::Service service(session, opts);

  serve::Request cc;
  cc.algo = serve::Algo::kCc;
  auto t1 = service.submit(cc);
  service.drain();
  const auto r1 = t1.result.get();
  EXPECT_FALSE(r1.from_cache);
  EXPECT_EQ(r1.epoch, 0u);

  // Identical query with no mutation pending: cache hit, same epoch.
  auto t2 = service.submit(cc);
  ASSERT_EQ(t2.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(t2.result.get().from_cache);

  // Queue a mutation, then the same query AGAIN. Even though the commit
  // has not run yet, the query must not complete from the (pre-mutation)
  // cache — this is the invalidation contract under test.
  serve::Request mutate;
  mutate.algo = serve::Algo::kMutate;
  mutate.ops = stream::generate_ops(3, 0, 12, 0, el.n);  // insert-only
  auto tm = service.submit(mutate);
  auto t3 = service.submit(cc);
  EXPECT_NE(t3.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  service.drain();
  const auto rm = tm.result.get();
  EXPECT_EQ(rm.epoch, 1u);
  EXPECT_EQ(rm.edges_inserted, 24);  // 12 undirected inserts, both directions
  EXPECT_EQ(rm.edges_deleted, 0);
  EXPECT_EQ(service.epoch(), 1u);

  const auto r3 = t3.result.get();
  EXPECT_FALSE(r3.from_cache);
  EXPECT_EQ(r3.epoch, 1u);
  // Insert-only delta with resident CC state: repaired incrementally.
  EXPECT_TRUE(r3.incremental);
  EXPECT_EQ(service.metrics().counter("stream.cc.incremental").value(), 1u);

  // The post-mutation answer is cached under the NEW epoch.
  auto t4 = service.submit(cc);
  ASSERT_EQ(t4.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto r4 = t4.result.get();
  EXPECT_TRUE(r4.from_cache);
  EXPECT_EQ(r4.component, r3.component);
}

TEST(StreamServe, MutationBarsBfsCoalescingAndOrdersRequests) {
  const auto el = test::small_rmat(7, 8, 4);
  serve::Session session(el, core::Grid(1, 2));
  serve::ServiceOptions opts;
  opts.auto_dispatch = false;
  serve::Service service(session, opts);

  serve::Request bfs;
  bfs.algo = serve::Algo::kBfs;
  bfs.roots = {1};
  auto ta = service.submit(bfs);
  bfs.roots = {2};
  auto tb = service.submit(bfs);
  serve::Request mutate;
  mutate.algo = serve::Algo::kMutate;
  mutate.ops = stream::generate_ops(9, 0, 4, 0, el.n);
  auto tm = service.submit(mutate);
  bfs.roots = {3};
  auto tc = service.submit(bfs);

  // Round 1 coalesces only the two pre-mutation BFS requests: the queued
  // mutation is a barrier the scheduler must not batch across.
  ASSERT_TRUE(service.pump());
  const auto ra = ta.result.get();
  const auto rb = tb.result.get();
  EXPECT_EQ(ra.batch_size, 2);
  EXPECT_EQ(rb.batch_size, 2);
  EXPECT_EQ(ra.epoch, 0u);
  EXPECT_NE(tc.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  ASSERT_TRUE(service.pump());  // the commit
  EXPECT_EQ(tm.result.get().epoch, 1u);
  ASSERT_TRUE(service.pump());  // the post-mutation BFS, alone
  const auto rc = tc.result.get();
  EXPECT_EQ(rc.batch_size, 1);
  EXPECT_EQ(rc.epoch, 1u);
  EXPECT_FALSE(service.pump());
}

TEST(StreamServe, ToleranceRequestsRunDeltaPagerank) {
  const auto el = test::small_rmat(7, 8, 21);
  serve::Session session(el, core::Grid(2, 2));
  serve::ServiceOptions opts;
  opts.auto_dispatch = false;
  serve::Service service(session, opts);

  // This PageRank keeps dangling mass undistributed, so the fixpoint's
  // total mass is exactly 1 - d * isolated / n (docs/STREAMING.md).
  const auto expected_mass = [](const graph::EdgeList& graph) {
    std::vector<int> deg(static_cast<std::size_t>(graph.n), 0);
    for (const auto& e : graph.edges) {
      ++deg[static_cast<std::size_t>(e.u)];
    }
    const auto isolated =
        static_cast<double>(std::count(deg.begin(), deg.end(), 0));
    return 1.0 - 0.85 * isolated / static_cast<double>(graph.n);
  };

  serve::Request pr;
  pr.algo = serve::Algo::kPageRank;
  pr.tolerance = 1e-10;
  pr.iterations = 500;  // cap for the tolerance solve
  auto t1 = service.submit(pr);
  service.drain();
  const auto r1 = t1.result.get();
  EXPECT_FALSE(r1.incremental);  // no resident state yet: cold solve
  double mass = 0.0;
  for (const auto v : r1.rank) mass += v;
  EXPECT_NEAR(mass, expected_mass(el), 1e-6);

  serve::Request mutate;
  mutate.algo = serve::Algo::kMutate;
  mutate.ops = stream::generate_ops(5, 0, 8, 25, el.n);
  service.submit(mutate);
  auto t2 = service.submit(pr);
  service.drain();
  const auto r2 = t2.result.get();
  EXPECT_TRUE(r2.incremental);  // seeded from the resident rank vector
  EXPECT_EQ(service.metrics().counter("stream.pr.delta_seeded").value(), 1u);
  auto mutated = el;
  stream::apply_to_edge_list(mutated, mutate.ops);
  mass = 0.0;
  for (const auto v : r2.rank) mass += v;
  EXPECT_NEAR(mass, expected_mass(mutated), 1e-6);
}

TEST(StreamServe, ScriptMutateCommand) {
  const auto el = test::small_rmat(6, 8, 17);
  serve::Session session(el, core::Grid(1, 2));
  serve::ServiceOptions opts;
  opts.auto_dispatch = false;
  serve::Service service(session, opts);

  std::istringstream script(
      "cc\n"
      "mutate 6 0 5\n"
      "cc\n");
  const auto result = serve::run_script(service, script);
  EXPECT_EQ(result.submitted, 3);
  EXPECT_EQ(result.completed, 3);
  EXPECT_EQ(result.failed, 0);
  EXPECT_NE(result.log.find("algo=mutate epoch=1 inserted=12 deleted=0"),
            std::string::npos);
  EXPECT_EQ(service.epoch(), 1u);
}

}  // namespace
}  // namespace hpcg

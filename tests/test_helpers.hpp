// Shared helpers for distributed-algorithm tests.
#pragma once

#include <functional>

#include "comm/runtime.hpp"
#include "core/dist2d.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"

namespace hpcg::test {

/// Runs `body(comm, graph)` on every rank of `grid` over `el` (which must
/// already be in its final, symmetrized form).
inline comm::RunStats run_on_grid(
    const graph::EdgeList& el, core::Grid grid,
    const std::function<void(comm::Comm&, core::Dist2DGraph&)>& body) {
  const auto parts = core::Partitioned2D::build(el, grid);
  return comm::Runtime::run(grid.ranks(), comm::Topology::aimos(grid.ranks()),
                            comm::CostModel{}, comm::RunOptions{},
                            [&](comm::Comm& comm) {
    core::Dist2DGraph g(comm, parts);
    body(comm, g);
  });
}

/// Small undirected RMAT test graph (self loops removed, symmetrized).
inline graph::EdgeList small_rmat(int scale, int edge_factor, std::uint64_t seed,
                                  bool weighted = false) {
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  auto el = graph::generate_rmat(params);
  graph::remove_self_loops(el);
  if (weighted) graph::attach_symmetric_weights(el, seed * 7 + 1);
  graph::symmetrize(el);
  return el;
}

/// Erdős–Rényi variant of the same.
inline graph::EdgeList small_er(graph::Gid n, std::int64_t m, std::uint64_t seed,
                                bool weighted = false) {
  auto el = graph::generate_erdos_renyi(n, m, seed);
  graph::remove_self_loops(el);
  if (weighted) graph::attach_symmetric_weights(el, seed * 7 + 1);
  graph::symmetrize(el);
  return el;
}

/// The striped-space view of `el` under `grid` (what reference oracles must
/// run on to agree with distributed results positionally).
inline graph::EdgeList striped_view(const graph::EdgeList& el, core::Grid grid) {
  graph::EdgeList out = el;
  graph::StripedRelabel relabel(el.n, grid.row_groups());
  relabel.apply(out);
  return out;
}

}  // namespace hpcg::test

// Intra-rank worker pool: edge-balanced chunking edge cases, pool
// execution semantics, SIMD lane-sum path equivalence, and the determinism
// contract end to end — every algorithm must produce bit-identical results
// with threads on or off, under sync or async exchanges, and across a
// transient-fault retry (docs/KERNELS.md).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gather.hpp"
#include "algos/label_prop.hpp"
#include "algos/msbfs.hpp"
#include "algos/pagerank.hpp"
#include "core/simd.hpp"
#include "core/worker_pool.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "test_helpers.hpp"

namespace ha = hpcg::algos;
namespace hc = hpcg::core;
namespace hcm = hpcg::comm;
namespace hf = hpcg::fault;
namespace hg = hpcg::graph;
using hpcg::test::small_rmat;

namespace {

// ---- edge_balanced_chunks: range flavour -------------------------------

std::span<const std::int64_t> as_span(const std::vector<std::int64_t>& v) {
  return {v.data(), v.size()};
}

/// Chunks must tile [v_begin, v_end) exactly, in order, with edge counts
/// matching the offsets they cover.
void expect_tiles(const std::vector<hc::Chunk>& chunks,
                  const std::vector<std::int64_t>& offsets,
                  std::size_t v_begin, std::size_t v_end) {
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().begin, v_begin);
  EXPECT_EQ(chunks.back().end, v_end);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i > 0) EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
    EXPECT_LT(chunks[i].begin, chunks[i].end);
    EXPECT_EQ(chunks[i].edges,
              offsets[chunks[i].end] - offsets[chunks[i].begin]);
  }
}

TEST(EdgeBalancedChunks, EmptyRangeYieldsNoChunks) {
  const std::vector<std::int64_t> offsets = {0, 2, 4};
  EXPECT_TRUE(hc::edge_balanced_chunks(as_span(offsets), 1, 1, 8).empty());
  EXPECT_TRUE(hc::edge_balanced_chunks(as_span(offsets), 2, 2, 8).empty());
}

TEST(EdgeBalancedChunks, AllZeroDegreeRangeIsOneChunk) {
  // No edges at all: the whole range still has to be visited (kernels
  // write per-vertex outputs) but there is nothing to balance.
  const std::vector<std::int64_t> offsets = {0, 0, 0, 0, 0};
  const auto chunks = hc::edge_balanced_chunks(as_span(offsets), 0, 4, 16);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 4u);
  EXPECT_EQ(chunks[0].edges, 0);
}

TEST(EdgeBalancedChunks, ZeroDegreeRunsCollapseIntoNeighbours) {
  // degrees: 4, 0,0,0,0, 4 with grain 4 -> the zero run must attach to a
  // neighbouring chunk, never form empty chunks of its own.
  const std::vector<std::int64_t> offsets = {0, 4, 4, 4, 4, 4, 8};
  const auto chunks = hc::edge_balanced_chunks(as_span(offsets), 0, 6, 4);
  expect_tiles(chunks, offsets, 0, 6);
  for (const auto& c : chunks) EXPECT_GT(c.edges, 0);
  EXPECT_EQ(chunks.size(), 2u);
}

TEST(EdgeBalancedChunks, HubLargerThanGrainOwnsOneChunk) {
  // degrees: 1, 100, 1 with grain 8: the hub is never split and its
  // neighbours still land in chunks (possibly shared with the hub's).
  const std::vector<std::int64_t> offsets = {0, 1, 101, 102};
  const auto chunks = hc::edge_balanced_chunks(as_span(offsets), 0, 3, 8);
  expect_tiles(chunks, offsets, 0, 3);
  bool hub_seen = false;
  for (const auto& c : chunks) {
    if (c.begin <= 1 && 1 < c.end) {
      hub_seen = true;
      EXPECT_GE(c.edges, 100);
    }
  }
  EXPECT_TRUE(hub_seen);
}

TEST(EdgeBalancedChunks, BoundariesIgnoreGrainBelowOne) {
  const std::vector<std::int64_t> offsets = {0, 2, 4, 6, 8};
  const auto one = hc::edge_balanced_chunks(as_span(offsets), 0, 4, 1);
  const auto zero = hc::edge_balanced_chunks(as_span(offsets), 0, 4, 0);
  ASSERT_EQ(one.size(), zero.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].begin, zero[i].begin);
    EXPECT_EQ(one[i].end, zero[i].end);
  }
  expect_tiles(one, offsets, 0, 4);
}

// ---- edge_balanced_chunks: queue flavour -------------------------------

TEST(EdgeBalancedChunks, EmptyQueueYieldsNoChunks) {
  const std::vector<std::int64_t> offsets = {0, 2, 4};
  EXPECT_TRUE(
      hc::edge_balanced_chunks(as_span(offsets), std::span<const hc::Lid>{}, 8)
          .empty());
}

TEST(EdgeBalancedChunks, QueueTailOfZeroDegreeItemsIsVisited) {
  // Queue ends in zero-degree vertices: they carry no edges but must still
  // be covered by the final chunk (BFS frontiers contain such vertices).
  const std::vector<std::int64_t> offsets = {0, 3, 3, 3, 6, 6};
  const std::vector<hc::Lid> queue = {3, 0, 1, 2, 4};
  const auto chunks = hc::edge_balanced_chunks(as_span(offsets), queue, 3);
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().begin, 0u);
  EXPECT_EQ(chunks.back().end, queue.size());
  std::int64_t edges = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i > 0) EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
    edges += chunks[i].edges;
  }
  EXPECT_EQ(edges, 6);  // sum of queued degrees
}

TEST(EdgeBalancedChunks, QueueBoundariesDependOnlyOnOrderAndGrain) {
  const std::vector<std::int64_t> offsets = {0, 2, 5, 6, 10, 12};
  const std::vector<hc::Lid> queue = {4, 2, 0, 3, 1};
  const auto a = hc::edge_balanced_chunks(as_span(offsets), queue, 4);
  const auto b = hc::edge_balanced_chunks(as_span(offsets), queue, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].edges, b[i].edges);
  }
}

// ---- WorkerPool --------------------------------------------------------

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  hc::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr std::size_t kJobs = 1000;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run(kJobs, [&](std::size_t job, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[job].fetch_add(1);
  });
  for (std::size_t j = 0; j < kJobs; ++j) EXPECT_EQ(hits[j].load(), 1);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  hc::WorkerPool pool(1);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t job, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(job);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, JobExceptionPropagatesAndPoolStaysUsable) {
  hc::WorkerPool pool(3);
  EXPECT_THROW(pool.run(64,
                        [&](std::size_t job, int) {
                          if (job == 7) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool must survive a failed run and execute the next one fully.
  std::atomic<int> done{0};
  pool.run(32, [&](std::size_t, int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32);
}

TEST(WorkerPool, ForEachChunkSerialIsAscendingOrder) {
  const std::vector<hc::Chunk> chunks = {{0, 2, 4}, {2, 5, 6}, {5, 6, 1}};
  std::vector<std::size_t> seen;
  hc::for_each_chunk(nullptr, chunks, [&](const hc::Chunk&, std::size_t ci,
                                          int worker) {
    EXPECT_EQ(worker, 0);
    seen.push_back(ci);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

// ---- SIMD lane sum -----------------------------------------------------

TEST(LaneGatherSum, DispatchedPathMatchesScalarBitwise) {
  // The dispatcher may pick AVX2/AVX-512; whatever ran must produce the
  // exact bits of the eight-chain scalar reference on skewed row lengths.
  std::vector<double> contrib(257);
  for (std::size_t i = 0; i < contrib.size(); ++i) {
    contrib[i] = 1.0 / static_cast<double>(3 * i + 1);
  }
  std::vector<hg::Gid> adj(1024);
  for (std::size_t e = 0; e < adj.size(); ++e) {
    adj[e] = static_cast<hg::Gid>((e * 131) % contrib.size());
  }
  for (const std::int64_t len :
       {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1024}) {
    for (const std::int64_t begin : {0, 1, 5, 8}) {
      if (begin + len > static_cast<std::int64_t>(adj.size())) continue;
      const double got =
          hc::lane_gather_sum(contrib.data(), adj.data(), begin, begin + len);
      const double want = hc::lane_gather_sum_scalar(contrib.data(),
                                                     adj.data(), begin,
                                                     begin + len);
      EXPECT_EQ(got, want) << "begin=" << begin << " len=" << len;
    }
  }
}

// ---- End-to-end determinism: threads on/off, sync/async, faults --------

/// Row-gathered results of the five pool-driven algorithms under one
/// kernel configuration.
struct AlgoResults {
  std::vector<std::int64_t> bfs_levels;
  std::vector<double> pagerank;
  std::vector<hg::Gid> cc_labels;
  std::vector<std::uint64_t> lp_labels;
  std::vector<std::int64_t> msbfs_levels0;
};

AlgoResults run_algos(const hg::EdgeList& el, hc::Grid grid,
                      const hcm::KernelOptions& kernel,
                      hf::FaultInjector* faults = nullptr) {
  const auto parts = hc::Partitioned2D::build(el, grid);
  hcm::RunOptions options;
  options.kernel = kernel;
  options.faults = faults;
  AlgoResults out;
  hcm::Runtime::run(grid.ranks(), hcm::Topology::aimos(grid.ranks()),
                    hcm::CostModel{}, options, [&](hcm::Comm& comm) {
    hc::Dist2DGraph g(comm, parts);
    auto bfs = ha::bfs(g, 0);
    auto pr = ha::pagerank(g, 8);
    auto cc = ha::connected_components(g, ha::CcOptions::sp_sw_vq());
    auto lp = ha::label_propagation(g, 6);
    const std::vector<hg::Gid> roots = {0, 1, 2};
    auto ms = ha::multi_source_bfs(g, roots);
    auto levels =
        ha::gather_row_state(g, std::span<const std::int64_t>(bfs.level));
    auto ranks = ha::gather_row_state(g, std::span<const double>(pr));
    auto colors = ha::gather_row_state(g, std::span<const hg::Gid>(cc.label));
    auto communities =
        ha::gather_row_state(g, std::span<const std::uint64_t>(lp.label));
    auto ms0 =
        ha::gather_row_state(g, std::span<const std::int64_t>(ms.level[0]));
    if (comm.rank() == 0) {
      out.bfs_levels = std::move(levels);
      out.pagerank = std::move(ranks);
      out.cc_labels = std::move(colors);
      out.lp_labels = std::move(communities);
      out.msbfs_levels0 = std::move(ms0);
    }
  });
  return out;
}

void expect_identical(const AlgoResults& a, const AlgoResults& b) {
  EXPECT_EQ(a.bfs_levels, b.bfs_levels);
  EXPECT_EQ(a.pagerank, b.pagerank);  // EXPECT_EQ: bit-identity, not near
  EXPECT_EQ(a.cc_labels, b.cc_labels);
  EXPECT_EQ(a.lp_labels, b.lp_labels);
  EXPECT_EQ(a.msbfs_levels0, b.msbfs_levels0);
}

hcm::KernelOptions kernel_with(int threads, int grain = 0,
                               bool async = false) {
  hcm::KernelOptions k;
  k.threads = threads;
  k.chunk_grain = grain;
  if (async) k.async = hcm::KernelOptions::Async::kOn;
  return k;
}

TEST(WorkerPoolDeterminism, ThreadsOnOffBitIdenticalSync) {
  const auto el = small_rmat(8, 8, /*seed=*/21);
  const hc::Grid grid = hc::Grid(2, 2);
  const auto serial = run_algos(el, grid, kernel_with(1));
  for (const int threads : {3, 4}) {
    expect_identical(serial, run_algos(el, grid, kernel_with(threads)));
  }
}

TEST(WorkerPoolDeterminism, ThreadsOnOffBitIdenticalAsync) {
  const auto el = small_rmat(8, 8, /*seed=*/22);
  const hc::Grid grid = hc::Grid(2, 2);
  const auto serial = run_algos(el, grid, kernel_with(1, 0, /*async=*/true));
  expect_identical(serial,
                   run_algos(el, grid, kernel_with(4, 0, /*async=*/true)));
}

TEST(WorkerPoolDeterminism, ChunkGrainNeverChangesResults) {
  // Grain changes chunk boundaries (more/fewer chunks) but every kernel
  // merges per-chunk outputs in chunk order, so bits cannot move.
  const auto el = small_rmat(8, 8, /*seed=*/23);
  const hc::Grid grid = hc::Grid(2, 2);
  const auto coarse = run_algos(el, grid, kernel_with(4, 1 << 20));
  const auto fine = run_algos(el, grid, kernel_with(4, 64));
  expect_identical(coarse, fine);
}

TEST(WorkerPoolDeterminism, TransientFaultRetryBitIdenticalWithThreads) {
  // A transient fault makes a collective retry (modeled backoff); the
  // recovered run must still match the fault-free serial run bit for bit,
  // with the worker pool on.
  const auto el = small_rmat(8, 8, /*seed=*/24);
  const hc::Grid grid = hc::Grid(2, 2);
  const auto clean = run_algos(el, grid, kernel_with(1));
  hf::FaultInjector injector(hf::FaultPlan::parse("transient@r1:n3:x2"),
                             grid.ranks());
  const auto faulted = run_algos(el, grid, kernel_with(4), &injector);
  expect_identical(clean, faulted);
  EXPECT_EQ(injector.fired(hf::FaultKind::kTransient), 1u);
}

}  // namespace

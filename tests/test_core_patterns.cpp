// Core execution/communication patterns: Manhattan collapse, vertex
// queues, packet swapping, the 2.5D owner exchange, and pull activation.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/activation.hpp"
#include "core/manhattan.hpp"
#include "core/packet.hpp"
#include "core/queue.hpp"
#include "core/reduce25d.hpp"
#include "test_helpers.hpp"

namespace hc = hpcg::core;
namespace hg = hpcg::graph;
using hpcg::test::run_on_grid;
using hpcg::test::small_rmat;

namespace {

// ---------------------------------------------------------------------------
// Manhattan collapse (Algorithm 6).
// ---------------------------------------------------------------------------

class ManhattanP : public ::testing::TestWithParam<int> {};  // block size

TEST_P(ManhattanP, VisitsExactlyTheNestedLoopEdges) {
  const int block_size = GetParam();
  auto el = small_rmat(9, 6, 303);
  hg::Csr csr(el.n, el.edges);

  // A queue with gaps, duplicates of structure (not vertices), and odd size.
  std::vector<hc::Lid> queue;
  for (hc::Lid v = 0; v < csr.n(); v += 3) queue.push_back(v);

  std::multiset<std::pair<hc::Lid, hg::Gid>> nested;
  hc::nested_for_each_edge(csr, std::span<const hc::Lid>(queue),
                           [&](hc::Lid v, hc::Lid u, std::int64_t) {
                             nested.insert({v, u});
                           });
  std::multiset<std::pair<hc::Lid, hg::Gid>> collapsed;
  hc::manhattan_for_each_edge(
      csr, std::span<const hc::Lid>(queue),
      [&](hc::Lid v, hc::Lid u, std::int64_t edge) {
        collapsed.insert({v, u});
        // Edge index must address the same adjacency slot.
        EXPECT_EQ(csr.adjacencies()[edge], u);
      },
      block_size);
  EXPECT_EQ(nested, collapsed);
}

TEST_P(ManhattanP, HandlesEmptyAndDegreeZeroQueues) {
  const int block_size = GetParam();
  hg::EdgeList el;
  el.n = 64;
  el.edges = {{5, 6}};
  hg::symmetrize(el);
  hg::Csr csr(el.n, el.edges);
  int visits = 0;
  hc::manhattan_for_each_edge(
      csr, std::span<const hc::Lid>(), [&](hc::Lid, hc::Lid, std::int64_t) { ++visits; },
      block_size);
  EXPECT_EQ(visits, 0);
  // All-degree-zero queue.
  std::vector<hc::Lid> zeros{0, 1, 2, 3};
  hc::manhattan_for_each_edge(
      csr, std::span<const hc::Lid>(zeros),
      [&](hc::Lid, hc::Lid, std::int64_t) { ++visits; }, block_size);
  EXPECT_EQ(visits, 0);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ManhattanP, ::testing::Values(1, 2, 7, 64, 256, 1024),
                         ::testing::PrintToStringParamName());

TEST(Manhattan, SpanReflectsBalancedWork) {
  auto el = small_rmat(8, 8, 305);
  hg::Csr csr(el.n, el.edges);
  std::vector<hc::Lid> queue(static_cast<std::size_t>(csr.n()));
  std::iota(queue.begin(), queue.end(), 0);
  const auto span = hc::manhattan_span(csr, std::span<const hc::Lid>(queue), 256);
  // The SIMT span is at least ceil(m / block) and at most one extra stride
  // per block of queued vertices.
  const std::int64_t blocks = (csr.n() + 255) / 256;
  EXPECT_GE(span, csr.m() / 256);
  EXPECT_LE(span, csr.m() / 256 + blocks);
}

// ---------------------------------------------------------------------------
// Vertex queue (q_in flag semantics).
// ---------------------------------------------------------------------------

TEST(VertexQueue, DeduplicatesAndClearsOnlyTouchedFlags) {
  hc::VertexQueue queue(100);
  EXPECT_TRUE(queue.try_push(5));
  EXPECT_FALSE(queue.try_push(5));  // atomicExch saw true
  EXPECT_TRUE(queue.try_push(99));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.contains(5));
  EXPECT_FALSE(queue.contains(6));
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.contains(5));
  EXPECT_TRUE(queue.try_push(5));  // reusable after clear
}

TEST(VertexQueue, SwapExchangesContents) {
  hc::VertexQueue a(10);
  hc::VertexQueue b(10);
  a.try_push(1);
  b.try_push(2);
  b.try_push(3);
  a.swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.contains(2));
  EXPECT_TRUE(b.contains(1));
}

// ---------------------------------------------------------------------------
// Packet swapping.
// ---------------------------------------------------------------------------

struct TestPacket {
  hg::Gid dest;
  hg::Gid src;
  std::int64_t payload;
};

struct GridCase {
  int rows;
  int cols;
};

class PacketP : public ::testing::TestWithParam<GridCase> {};

TEST_P(PacketP, EveryPacketReachesARowOwnerExactlyOnce) {
  const auto [rows, cols] = GetParam();
  const auto el = small_rmat(7, 4, 307);
  std::mutex mutex;
  std::multiset<std::pair<hg::Gid, hg::Gid>> delivered;  // (dest, src)

  run_on_grid(el, hc::Grid(rows, cols), [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    // Each rank sends one packet to every 7th vertex, from a synthetic
    // source identifying the sender.
    std::vector<TestPacket> out;
    for (hg::Gid dest = comm.rank() % 7; dest < g.n(); dest += 7) {
      out.push_back({dest, comm.rank() * 1000000 + dest, dest * 3});
    }
    auto arrived = hc::packet_swap(g, std::span<const TestPacket>(out),
                                   [](const TestPacket& p) { return p.dest; });
    std::lock_guard lock(mutex);
    for (const auto& p : arrived) {
      // Delivery contract: the receiving rank owns the destination vertex.
      EXPECT_TRUE(g.lids().owns_row_gid(p.dest));
      EXPECT_EQ(p.payload, p.dest * 3);
      delivered.insert({p.dest, p.src});
    }
  });

  // Exactly one delivery per sent packet (one rank per row group receives).
  const hc::Grid grid(rows, cols);
  std::multiset<std::pair<hg::Gid, hg::Gid>> expected;
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    for (hg::Gid dest = rank % 7; dest < el.n; dest += 7) {
      expected.insert({dest, rank * 1000000 + dest});
    }
  }
  EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PacketP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{2, 4},
                      GridCase{4, 2}, GridCase{3, 3}, GridCase{3, 5}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols);
    });

// ---------------------------------------------------------------------------
// 2.5D owner exchange.
// ---------------------------------------------------------------------------

TEST(Reduce25D, PartialsReachHierarchicalOwnersCompletely) {
  const auto el = small_rmat(7, 4, 309);
  const hc::Grid grid(2, 4);
  std::mutex mutex;
  std::map<hg::Gid, std::uint64_t> merged;  // vertex -> summed weight

  run_on_grid(el, grid, [&](hpcg::comm::Comm& comm, hc::Dist2DGraph& g) {
    // Every rank contributes one record per row vertex with its rank as
    // weight; the owner must see the sum over its row group.
    std::vector<hc::PartialAggregate> partials;
    for (hc::Lid v = g.row_lid_begin(); v < g.row_lid_end(); ++v) {
      partials.push_back({g.lids().to_gid(v), 7u,
                          static_cast<std::uint64_t>(comm.rank()) + 1});
    }
    auto received = hc::exchange_to_owners(g, std::span<const hc::PartialAggregate>(partials));
    const auto owners = hc::hierarchical_ownership(g);
    std::lock_guard lock(mutex);
    for (const auto& p : received) {
      // Ownership contract: the receiver is the hierarchical owner.
      EXPECT_EQ(owners.part_of(p.vertex - g.lids().row_offset()), g.rank_r());
      merged[p.vertex] += p.weight;
    }
  });

  // Each vertex's owner received contributions from all of its row group.
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(el.n));
  for (const auto& [vertex, weight] : merged) {
    // Sum of (rank+1) over the vertex's row group members.
    const int row_group = hc::BlockPartition(el.n, grid.row_groups()).part_of(vertex);
    std::uint64_t expected = 0;
    for (int c = 0; c < grid.col_groups(); ++c) {
      expected += static_cast<std::uint64_t>(grid.rank_at(row_group, c)) + 1;
    }
    EXPECT_EQ(weight, expected) << "vertex " << vertex;
  }
}

// ---------------------------------------------------------------------------
// Pull activation.
// ---------------------------------------------------------------------------

TEST(PullActivation, ActivatesExactlyNeighborsOfChanged) {
  const auto el = small_rmat(7, 4, 311);
  const hc::Grid grid(3, 3);
  const auto striped = hpcg::test::striped_view(el, grid);

  // Oracle: neighbors (in the full graph) of the chosen changed set.
  const std::set<hg::Gid> changed_gids{1, 17, 42};
  std::set<hg::Gid> expected;
  for (const auto& e : striped.edges) {
    if (changed_gids.contains(e.u)) expected.insert(e.v);
  }

  std::mutex mutex;
  std::map<hg::Gid, int> activated;  // gid -> how many ranks activated it
  run_on_grid(el, grid, [&](hpcg::comm::Comm&, hc::Dist2DGraph& g) {
    hc::VertexQueue changed(g.lids().n_total());
    for (const auto gid : changed_gids) {
      if (g.lids().owns_row_gid(gid)) changed.try_push(g.lids().row_lid(gid));
    }
    auto active = hc::pull_activation(g, changed);
    std::lock_guard lock(mutex);
    for (const auto l : active.items()) {
      ++activated[g.lids().to_gid(l)];
    }
  });

  // Exactly the neighbor set, activated once per owning rank (R per group).
  std::set<hg::Gid> got;
  for (const auto& [gid, count] : activated) {
    got.insert(gid);
    EXPECT_EQ(count, grid.ranks_per_row_group()) << "gid " << gid;
  }
  EXPECT_EQ(got, expected);
}

}  // namespace

// The checker checking itself: config round-trips, sampler determinism
// and coherence, oracle sensitivity (every canary mutation must be
// caught), clean configs passing every oracle, and the shrinker actually
// shrinking.
#include <gtest/gtest.h>

#include <set>

#include "check/canary.hpp"
#include "check/config.hpp"
#include "check/fuzzer.hpp"
#include "check/oracles.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "util/prng.hpp"

namespace hpcg::check {
namespace {

TEST(CheckConfig, RoundTripsThroughText) {
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    const CheckConfig cfg = sample_config(rng);
    const CheckConfig back = CheckConfig::parse(cfg.to_string());
    EXPECT_EQ(cfg.to_string(), back.to_string()) << cfg.to_string();
    EXPECT_EQ(cfg.gen, back.gen);
    EXPECT_EQ(cfg.scale, back.scale);
    EXPECT_EQ(cfg.rows, back.rows);
    EXPECT_EQ(cfg.cols, back.cols);
    EXPECT_EQ(cfg.algo, back.algo);
    EXPECT_EQ(cfg.sources, back.sources);
    EXPECT_EQ(cfg.faults, back.faults);
    EXPECT_EQ(cfg.checkpoint_every, back.checkpoint_every);
    EXPECT_EQ(cfg.serve_batch, back.serve_batch);
    EXPECT_EQ(cfg.mut_batches, back.mut_batches);
    if (cfg.mut_batches > 0) {
      EXPECT_EQ(cfg.mut_ops, back.mut_ops);
      EXPECT_EQ(cfg.mut_seed, back.mut_seed);
      EXPECT_EQ(cfg.mut_delete_pct, back.mut_delete_pct);
    }
  }
}

TEST(CheckConfig, ParseRejectsMalformedText) {
  EXPECT_THROW(CheckConfig::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("algo=quicksort"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("gen=livejournal"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("grid=2"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("grid=0x4"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("scale=abc"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("scale="), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("unknown=1"), std::invalid_argument);
  EXPECT_THROW(CheckConfig::parse("sources=1,,2"), std::invalid_argument);
}

TEST(CheckConfig, SamplerIsDeterministicPerSeed) {
  util::Xoshiro256 a(7), b(7), c(8);
  bool any_difference = false;
  for (int i = 0; i < 50; ++i) {
    const auto ca = sample_config(a).to_string();
    EXPECT_EQ(ca, sample_config(b).to_string());
    if (ca != sample_config(c).to_string()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CheckConfig, SamplerProducesCoherentConfigs) {
  util::Xoshiro256 rng(123);
  std::set<std::string> algos, paths;
  for (int i = 0; i < 500; ++i) {
    const CheckConfig cfg = sample_config(rng);
    algos.insert(cfg.algo);
    paths.insert(path_for(cfg));
    EXPECT_GE(cfg.scale, 5);
    EXPECT_LE(cfg.ranks(), 8);
    if (cfg.serve_batch > 0) {
      EXPECT_EQ(cfg.algo, "bfs");
      EXPECT_GE(static_cast<int>(cfg.sources.size()), cfg.serve_batch);
    }
    if (cfg.mut_batches > 0) {
      // Streaming lives inside one serve session: no serve batching, no
      // checkpoint/restart, and only the three algorithms with
      // incremental kernels. Kill faults are legal only under
      // supervision (sup > 0), checked below.
      EXPECT_TRUE(cfg.algo == "bfs" || cfg.algo == "pr" || cfg.algo == "cc")
          << cfg.to_string();
      EXPECT_EQ(cfg.serve_batch, 0) << cfg.to_string();
      EXPECT_EQ(cfg.checkpoint_every, 0) << cfg.to_string();
      EXPECT_GE(cfg.mut_ops, 1) << cfg.to_string();
      EXPECT_GE(cfg.mut_delete_pct, 0) << cfg.to_string();
      EXPECT_LE(cfg.mut_delete_pct, 100) << cfg.to_string();
    }
    if (cfg.algo == "msbfs") {
      EXPECT_GE(cfg.sources.size(), 2u);
      EXPECT_LE(cfg.sources.size(), 8u);
    }
    if (cfg.algo == "prwarm") {
      EXPECT_GE(cfg.warm_split, 1);
      EXPECT_LT(cfg.warm_split, cfg.iterations);
    }
    const bool kill = cfg.faults.find("crash") != std::string::npos ||
                      cfg.faults.find("silent") != std::string::npos;
    if (kill && cfg.mut_batches > 0) {
      // Supervised streaming: the serve::Supervisor rebuilds the killed
      // session from its committed log, so the kill needs a restart
      // budget instead of a Checkpointer.
      EXPECT_GT(cfg.sup, 0) << cfg.to_string();
      EXPECT_EQ(cfg.serve_batch, 0) << cfg.to_string();
      EXPECT_EQ(cfg.checkpoint_every, 0) << cfg.to_string();
    } else if (kill) {
      // Kill faults only where a Checkpointer can be wired, and always
      // with checkpointing on, so recovery resumes instead of replaying.
      EXPECT_TRUE(cfg.checkpointable()) << cfg.to_string();
      EXPECT_EQ(cfg.serve_batch, 0) << cfg.to_string();
      EXPECT_GT(cfg.checkpoint_every, 0) << cfg.to_string();
    }
    if (cfg.sup > 0) {
      // Supervision is only sampled for streaming runs with a kill to
      // recover from (sup= requires mut=, enforced by validate()).
      EXPECT_GT(cfg.mut_batches, 0) << cfg.to_string();
      EXPECT_TRUE(kill) << cfg.to_string();
    }
    for (const Gid s : cfg.sources) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, cfg.n());
    }
  }
  // The sampler must actually cover the space.
  EXPECT_EQ(algos.size(), 6u);
  EXPECT_EQ(paths,
            (std::set<std::string>{"direct", "recovery", "serve", "stream"}));
}

TEST(CheckOracles, EveryCanaryMutationIsCaught) {
  const auto outcomes = run_canaries(nullptr);
  ASSERT_GE(outcomes.size(), 5u);  // the harness promises >= 5 distinct bugs
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.caught) << "canary escaped: " << to_string(o.canary);
  }
}

TEST(CheckOracles, CleanConfigsPassEveryOracle) {
  FuzzOptions opts;
  opts.with_identity = true;
  opts.shrink_failures = false;
  const char* kConfigs[] = {
      "gen=rmat scale=6 ef=8 seed=3 grid=2x3 algo=bfs root=9 async=1 chunk=2",
      "gen=er scale=6 ef=8 seed=4 grid=1x4 algo=cc",
      "gen=ba scale=6 ef=8 seed=5 grid=2x2 algo=prwarm iters=5 warm=2",
      "gen=rmat scale=6 ef=6 seed=6 grid=2x2 algo=lp iters=4 "
      "faults=crash@r2:s2 fseed=3 ckpt=1",
      "gen=rmat scale=6 ef=8 seed=8 grid=2x2 algo=bfs sources=1,9,23 serve=2",
      "gen=rmat scale=6 ef=8 seed=9 grid=2x2 algo=cc mut=3x8 mseed=7 mdel=50",
      "gen=er scale=6 ef=8 seed=10 grid=2x3 algo=pr iters=4 mut=2x6 mseed=3 "
      "mdel=0 async=1 chunk=2",
      "gen=ba scale=6 ef=8 seed=12 grid=1x4 algo=bfs root=21 mut=2x10 mseed=5 "
      "mdel=20 faults=transient@r1:n3:x2 fseed=8",
  };
  for (const char* text : kConfigs) {
    const auto failures = check_config(CheckConfig::parse(text), opts);
    EXPECT_TRUE(failures.empty())
        << text << " -> [" << failures.front().oracle << "] "
        << failures.front().detail;
  }
}

TEST(CheckOracles, RunConfigRejectsNonsense) {
  FuzzOptions opts;
  opts.with_identity = false;
  auto cfg = CheckConfig::parse("gen=er scale=5 algo=bfs root=31");
  cfg.root = 9999;  // out of range for n = 32
  const auto failures = check_config(cfg, opts);
  ASSERT_FALSE(failures.empty());
  EXPECT_EQ(failures.front().oracle, "exception");
}

TEST(CheckOracles, NormalizeComponentsCanonicalizesLabels) {
  // Raw labels in any id space; canonical form is min original member.
  const std::vector<Gid> raw = {7, 7, 3, 3, 7};
  const auto canon = normalize_components(raw);
  EXPECT_EQ(canon, (std::vector<Gid>{0, 0, 2, 2, 0}));
}

TEST(CheckShrink, ReducesAFailingConfigToItsCore) {
  // A deliberately baroque configuration carrying an off-by-one BFS bug
  // (via the canary hook): the shrinker should strip the incidental
  // dimensions while the mutation keeps failing.
  const CheckConfig failing = CheckConfig::parse(
      "gen=rmat scale=8 ef=12 seed=77 grid=2x3 algo=bfs root=150 "
      "async=1 chunk=3 faults=transient@r1:n3:x2 fseed=4");
  const auto still_fails = [](const CheckConfig& cfg) {
    const auto el = build_input(cfg);
    const auto result = run_config(cfg, Canary::kBfsLevelOffByOne);
    return !check_reference(cfg, el, result).empty();
  };
  ASSERT_TRUE(still_fails(failing));
  const ShrinkResult shrunk = shrink(failing, still_fails, 40);
  EXPECT_FALSE(shrunk.accepted.empty());
  EXPECT_TRUE(still_fails(shrunk.config));
  // The incidental execution-mode dimensions must be gone...
  EXPECT_TRUE(shrunk.config.faults.empty());
  EXPECT_FALSE(shrunk.config.async);
  // ...and the input materially smaller.
  EXPECT_LT(shrunk.config.scale, failing.scale);
  EXPECT_LT(shrunk.config.ranks(), failing.ranks());
}

TEST(CheckRunner, PathSelectionFollowsConfig) {
  EXPECT_EQ(path_for(CheckConfig::parse("algo=bfs")), "direct");
  EXPECT_EQ(path_for(CheckConfig::parse("algo=bfs ckpt=2")), "recovery");
  EXPECT_EQ(path_for(CheckConfig::parse("algo=lp faults=crash@r0:s1 ckpt=1")),
            "recovery");
  EXPECT_EQ(path_for(CheckConfig::parse("algo=pr faults=degrade@r1:n2:x4:f4")),
            "direct");
  EXPECT_EQ(path_for(CheckConfig::parse("algo=bfs sources=1,2 serve=2")), "serve");
  EXPECT_EQ(path_for(CheckConfig::parse("algo=cc mut=2x8")), "stream");
}

TEST(CheckRunner, StreamPathRecordsOneEpochPerBatch) {
  const auto cfg = CheckConfig::parse(
      "gen=er scale=6 ef=8 seed=5 grid=2x2 algo=cc mut=3x8 mseed=2 mdel=30");
  const RunResult result = run_config(cfg);
  EXPECT_EQ(result.path, "stream");
  ASSERT_EQ(result.epochs.size(), 4u);
  EXPECT_EQ(result.epochs.front().epoch, 0u);
  // Entry 0 is mirrored into the top-level vectors for the pre-mutation
  // reference/invariant oracles.
  EXPECT_EQ(result.component, result.epochs.front().component);
  const auto el = build_input(cfg);
  EXPECT_TRUE(check_stream(cfg, el, result).empty());
}

TEST(CheckRunner, StreamPathRejectsIncoherentConfigs) {
  EXPECT_THROW(run_config(CheckConfig::parse("algo=lp mut=2x8")),
               std::invalid_argument);
  EXPECT_THROW(run_config(CheckConfig::parse("algo=bfs mut=2x8 ckpt=1")),
               std::invalid_argument);
  EXPECT_THROW(run_config(CheckConfig::parse(
                   "algo=bfs mut=2x8 faults=crash@r0:s1 fseed=1")),
               std::invalid_argument);
}

TEST(CheckFuzzer, SeededSweepIsCleanOnTheFixedEngine) {
  FuzzOptions opts;
  opts.seed = 99;
  opts.configs = 12;
  opts.with_identity = true;
  opts.shrink_failures = false;
  const SweepResult result = fuzz_sweep(opts);
  EXPECT_EQ(result.ran, 12);
  EXPECT_TRUE(result.ok()) << result.reports.front().failures.front().oracle
                           << ": "
                           << result.reports.front().failures.front().detail;
}

}  // namespace
}  // namespace hpcg::check

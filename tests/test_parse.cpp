// Checked numeric parsing (util/parse.hpp) and the CLI surfaces that were
// migrated onto it: no file or flag input may crash a tool with an uncaught
// std::invalid_argument/out_of_range, and no trailing-garbage value may be
// silently truncated (the std::sto* failure modes).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/datasets.hpp"
#include "telemetry/chrome_trace.hpp"
#include "tune/sweep.hpp"
#include "util/parse.hpp"

namespace hu = hpcg::util;

namespace {

TEST(Parse, Int64AcceptsExactIntegers) {
  EXPECT_EQ(hu::parse_int64("0"), 0);
  EXPECT_EQ(hu::parse_int64("-17"), -17);
  EXPECT_EQ(hu::parse_int64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(hu::parse_int64("-9223372036854775808"), INT64_MIN);
}

TEST(Parse, Int64RejectsGarbage) {
  EXPECT_FALSE(hu::parse_int64(""));
  EXPECT_FALSE(hu::parse_int64("abc"));
  EXPECT_FALSE(hu::parse_int64("12abc"));   // stoll would return 12
  EXPECT_FALSE(hu::parse_int64("12 "));
  EXPECT_FALSE(hu::parse_int64(" 12"));
  EXPECT_FALSE(hu::parse_int64("1.5"));
  EXPECT_FALSE(hu::parse_int64("9223372036854775808"));  // overflow
  EXPECT_FALSE(hu::parse_int64("++1"));
}

TEST(Parse, Uint64RejectsNegativeAndOverflow) {
  EXPECT_EQ(hu::parse_uint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(hu::parse_uint64("-1"));  // strtoull would wrap around
  EXPECT_FALSE(hu::parse_uint64("18446744073709551616"));
  EXPECT_FALSE(hu::parse_uint64(""));
  EXPECT_FALSE(hu::parse_uint64("0x10"));
}

TEST(Parse, Int32RangeChecked) {
  EXPECT_EQ(hu::parse_int32("2147483647"), INT32_MAX);
  EXPECT_EQ(hu::parse_int32("-2147483648"), INT32_MIN);
  EXPECT_FALSE(hu::parse_int32("2147483648"));  // stoi would throw
  EXPECT_FALSE(hu::parse_int32("1e3"));
}

TEST(Parse, DoubleStrictness) {
  EXPECT_DOUBLE_EQ(*hu::parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*hu::parse_double("-1e-9"), -1e-9);
  EXPECT_DOUBLE_EQ(*hu::parse_double("3"), 3.0);
  EXPECT_FALSE(hu::parse_double(""));
  EXPECT_FALSE(hu::parse_double("1.5x"));
  EXPECT_FALSE(hu::parse_double(" 1.5"));  // strtod skips whitespace
  EXPECT_FALSE(hu::parse_double("nanana"));
  EXPECT_FALSE(hu::parse_double("1e99999"));  // ERANGE
}

// Sweep CSV: malformed numeric fields are typed line-diagnosed errors.
TEST(ParseMigration, SweepCsvRejectsMalformedRows) {
  const std::string header = "pattern,level,group_size,bytes,seconds,reps\n";
  {
    std::istringstream ok(header + "p2p,nvlink,2,1024,1e-6,3\n");
    const auto sweep = hpcg::tune::read_sweep_csv(ok);
    ASSERT_EQ(sweep.size(), 1u);
    EXPECT_EQ(sweep[0].bytes, 1024u);
  }
  const char* bad_rows[] = {
      "p2p,nvlink,2x,1024,1e-6,3\n",                        // trailing garbage
      "p2p,nvlink,2,99999999999999999999999999,1e-6,3\n",   // oversized
      "p2p,nvlink,2,,1e-6,3\n",                             // empty field
      "p2p,nvlink,2,1024,fast,3\n",                         // garbage double
      "warp,nvlink,2,1024,1e-6,3\n",                        // unknown pattern
  };
  for (const char* row : bad_rows) {
    std::istringstream in(header + row);
    EXPECT_THROW(hpcg::tune::read_sweep_csv(in), std::invalid_argument)
        << row;
  }
}

TEST(ParseMigration, DatasetScaleSuffixChecked) {
  EXPECT_NO_THROW(hpcg::graph::load_dataset("rmat8", 0));
  // stoi("XL") used to throw std::invalid_argument with a bare message;
  // now these are diagnosed as unknown datasets.
  EXPECT_THROW(hpcg::graph::load_dataset("rmatXL", 0), std::invalid_argument);
  EXPECT_THROW(hpcg::graph::load_dataset("rmat", 0), std::invalid_argument);
  EXPECT_THROW(hpcg::graph::load_dataset("rand1e4", 0), std::invalid_argument);
  EXPECT_THROW(hpcg::graph::load_dataset("rmat10trailing", 0),
               std::invalid_argument);
}

TEST(ParseMigration, ChromeTraceMalformedNumberIsTypedError) {
  // An exponent with no digits scans as a number token but fails the
  // checked parse; stod would also throw, but with no position context.
  const std::string bad = R"({"traceEvents":[{"ts":1e+}]})";
  EXPECT_THROW(hpcg::telemetry::read_chrome_trace(bad), std::exception);
}

#ifdef HPCG_TRACE_BINARY
// End-to-end: the hpcg_trace CLI must exit nonzero with a diagnostic on
// malformed cost-trace CSVs — never crash.
class TraceCli : public ::testing::Test {
 protected:
  std::filesystem::path dir_;
  std::string calibration_;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hpcg_trace_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // A minimal single-level calibration (schema matches tune::Calibration).
    calibration_ = (dir_ / "cal.json").string();
    std::ofstream cal(calibration_);
    cal << R"({"version": 1, "nranks": 4, "topology": "test",
               "levels": {"nvlink": {"alpha_s": 1e-6,
                                     "beta_bytes_s": 1e10,
                                     "software_alpha_s": 5e-7,
                                     "samples": 10,
                                     "max_rel_error": 0.0}},
               "crossovers": []})";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run_on_csv(const std::string& csv_body) {
    const auto csv = dir_ / "cost.csv";
    std::ofstream out(csv);
    out << csv_body;
    out.close();
    const std::string cmd = std::string(HPCG_TRACE_BINARY) +
                            " --calibration=" + calibration_ +
                            " --cost-trace=" + csv.string() + " > " +
                            (dir_ / "out.txt").string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    return status;
  }
};

TEST_F(TraceCli, ValidCsvExitsZero) {
  EXPECT_EQ(run_on_csv("end_time_s,cost_s,op,group_size,bytes,level\n"
                       "0.001,0.0005,allreduce,4,4096,nvlink\n"),
            0);
}

TEST_F(TraceCli, MalformedFieldsExitNonzeroWithoutCrash) {
  const char* bad[] = {
      // group_size garbage
      "end_time_s,cost_s,op,group_size,bytes,level\n"
      "0.001,0.0005,allreduce,4x,4096,nvlink\n",
      // oversized bytes (stoull would throw out_of_range)
      "end_time_s,cost_s,op,group_size,bytes,level\n"
      "0.001,0.0005,allreduce,4,99999999999999999999999,nvlink\n",
      // empty cost field
      "end_time_s,cost_s,op,group_size,bytes,level\n"
      "0.001,,allreduce,4,4096,nvlink\n",
      // unknown op name
      "end_time_s,cost_s,op,group_size,bytes,level\n"
      "0.001,0.0005,warpshuffle,4,4096,nvlink\n",
  };
  for (const char* csv : bad) {
    const int status = run_on_csv(csv);
    EXPECT_NE(status, 0) << csv;
    // A crash (uncaught exception -> abort) is a signal death, not a
    // normal exit; require a clean nonzero exit.
    EXPECT_TRUE(WIFEXITED(status)) << csv;
  }
}
#endif  // HPCG_TRACE_BINARY

}  // namespace

// Table 2 of the paper: the three global->local mapping types.
#include <gtest/gtest.h>

#include "core/lid_map.hpp"

namespace hc = hpcg::core;

namespace {

TEST(LidMap, Type0NoOverlap) {
  // Row [100, 110), Col [300, 320): disjoint.
  hc::LidMap m(100, 10, 300, 20);
  EXPECT_EQ(m.type(), 0);
  EXPECT_EQ(m.c_offset_r(), 0);
  EXPECT_EQ(m.c_offset_c(), 10);
  EXPECT_EQ(m.n_total(), 30);
  EXPECT_EQ(m.row_lid(100), 0);
  EXPECT_EQ(m.row_lid(109), 9);
  EXPECT_EQ(m.col_lid(300), 10);
  EXPECT_EQ(m.col_lid(319), 29);
}

TEST(LidMap, Type1RowFirst) {
  // Row [100, 150), Col [120, 160): overlap, row offset smaller.
  hc::LidMap m(100, 50, 120, 40);
  EXPECT_EQ(m.type(), 1);
  EXPECT_EQ(m.c_offset_r(), 0);
  EXPECT_EQ(m.c_offset_c(), 20);  // diff = 120 - 100
  EXPECT_EQ(m.n_total(), 60);     // union [100, 160)
  // Overlap GIDs map to a single LID through both mappings.
  for (hc::Gid g = 120; g < 150; ++g) EXPECT_EQ(m.row_lid(g), m.col_lid(g));
}

TEST(LidMap, Type2ColFirst) {
  // Row [150, 200), Col [130, 170): overlap, col offset smaller.
  hc::LidMap m(150, 50, 130, 40);
  EXPECT_EQ(m.type(), 2);
  EXPECT_EQ(m.c_offset_c(), 0);
  EXPECT_EQ(m.c_offset_r(), 20);  // diff = 150 - 130
  EXPECT_EQ(m.n_total(), 70);     // union [130, 200)
  for (hc::Gid g = 150; g < 170; ++g) EXPECT_EQ(m.row_lid(g), m.col_lid(g));
}

TEST(LidMap, DiagonalFullOverlap) {
  // Square-grid diagonal rank: identical ranges -> type 1 with diff 0.
  hc::LidMap m(40, 10, 40, 10);
  EXPECT_EQ(m.type(), 1);
  EXPECT_EQ(m.n_total(), 10);
  for (hc::Gid g = 40; g < 50; ++g) {
    EXPECT_EQ(m.row_lid(g), m.col_lid(g));
    EXPECT_TRUE(m.lid_is_row(m.row_lid(g)));
    EXPECT_TRUE(m.lid_is_col(m.row_lid(g)));
  }
}

TEST(LidMap, RoundTripAllTypes) {
  const hc::LidMap maps[] = {
      hc::LidMap(100, 10, 300, 20),  // type 0
      hc::LidMap(100, 50, 120, 40),  // type 1
      hc::LidMap(150, 50, 130, 40),  // type 2
      hc::LidMap(0, 7, 0, 7),        // diagonal
  };
  for (const auto& m : maps) {
    for (hc::Gid g = m.row_offset(); g < m.row_offset() + m.n_row(); ++g) {
      EXPECT_EQ(m.to_gid(m.to_lid(g)), g);
      EXPECT_TRUE(m.owns_row_gid(g));
    }
    for (hc::Gid g = m.col_offset(); g < m.col_offset() + m.n_col(); ++g) {
      EXPECT_EQ(m.to_gid(m.to_lid(g)), g);
      EXPECT_TRUE(m.has_col_gid(g));
    }
    EXPECT_THROW(m.to_lid(m.row_offset() - 1000), std::out_of_range);
  }
}

TEST(LidMap, LidClassification) {
  hc::LidMap m(100, 10, 300, 20);  // type 0
  for (hc::Lid l = 0; l < 10; ++l) {
    EXPECT_TRUE(m.lid_is_row(l));
    EXPECT_FALSE(m.lid_is_col(l));
  }
  for (hc::Lid l = 10; l < 30; ++l) {
    EXPECT_FALSE(m.lid_is_row(l));
    EXPECT_TRUE(m.lid_is_col(l));
  }
}

}  // namespace
